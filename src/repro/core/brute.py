"""Brute-force reference implementations for differential testing.

Nothing here is meant to be fast: each function re-decides a problem solved
elsewhere in the library by the most literal method available, so the test
suite can compare answers on small instances.
"""

from __future__ import annotations

from itertools import combinations
from typing import (
    Any,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.cq.engine import default_engine
from repro.cq.query import CQ
from repro.data.database import Database, Fact
from repro.data.labeling import TrainingDatabase
from repro.exceptions import SeparabilityError
from repro.hypergraph.ghw import ghw_at_most
from repro.linsep.lp import is_linearly_separable

__all__ = [
    "cover_game_holds_reference",
    "cq_indistinguishable",
    "cq_separable",
    "ghw_separable_lower_bound",
    "min_pool_dimension",
]

Element = Any
_Position = Tuple[FrozenSet[Element], Tuple[Tuple[Element, Element], ...]]


def cover_game_holds_reference(
    source: Database,
    source_tuple: Sequence[Element],
    target: Database,
    target_tuple: Sequence[Element],
    k: int,
) -> bool:
    """The k-cover game decided literally from its definition.

    Positions are *all* k-coverable pebble configurations with *all* their
    partial homomorphisms; the greatest fixpoint removes positions violating
    the single-pebble forth property or whose one-pebble restrictions died.
    Exponentially slower than :func:`repro.covergame.game.cover_game_holds`
    but a direct transcription of Section 5's definition.
    """
    anchor: Dict[Element, Element] = {}
    for element, image in zip(source_tuple, target_tuple):
        if anchor.get(element, image) != image:
            return False
        anchor[element] = image
    anchor_elements = frozenset(anchor)

    # All k-coverable configurations: subsets of unions of ≤ k facts.
    fact_sets = sorted(
        {fact.elements for fact in source.facts},
        key=lambda s: sorted(map(repr, s)),
    )
    coverable: Set[FrozenSet[Element]] = {frozenset()}
    for size in range(1, min(k, len(fact_sets)) + 1):
        for combo in combinations(fact_sets, size):
            union = frozenset().union(*combo)
            elements = sorted(union, key=repr)
            for r in range(len(elements) + 1):
                for subset in combinations(elements, r):
                    coverable.add(frozenset(subset))

    target_domain = sorted(target.domain, key=repr)

    def is_partial_hom(mapping: Dict[Element, Element]) -> bool:
        defined = set(mapping) | anchor_elements
        combined = dict(anchor)
        combined.update(mapping)
        for fact in source.facts:
            if all(element in defined for element in fact.arguments):
                image = Fact(
                    fact.relation,
                    tuple(combined[element] for element in fact.arguments),
                )
                if image not in target:
                    return False
        return True

    if not is_partial_hom({}):
        return False

    positions: Set[_Position] = set()
    for config in coverable:
        elements = sorted(config, key=repr)
        free = [e for e in elements if e not in anchor]

        def assignments(index: int, current: Dict[Element, Element]) -> None:
            if index == len(free):
                mapping = {
                    element: (
                        anchor[element]
                        if element in anchor
                        else current[element]
                    )
                    for element in elements
                }
                if is_partial_hom(mapping):
                    positions.add(
                        (config, tuple(sorted(mapping.items(), key=repr)))
                    )
                return
            for value in target_domain:
                current[free[index]] = value
                assignments(index + 1, current)
            current.pop(free[index], None)

        assignments(0, {})

    def survives(position: _Position, alive: Set[_Position]) -> bool:
        config, items = position
        mapping = dict(items)
        # Forth: every coverable one-element extension has an answer.
        for element in source.domain:
            if element in config:
                continue
            extended = config | {element}
            if not any(extended <= cover for cover in coverable):
                continue
            found = False
            for value in target_domain:
                new_mapping = dict(mapping)
                new_mapping[element] = value
                candidate = (
                    extended,
                    tuple(sorted(new_mapping.items(), key=repr)),
                )
                if candidate in alive:
                    found = True
                    break
            if not found:
                return False
        # Back: every one-pebble removal must itself be alive.
        for element in config:
            reduced = config - {element}
            reduced_mapping = {
                key: value for key, value in items if key != element
            }
            candidate = (
                reduced,
                tuple(sorted(reduced_mapping.items(), key=repr)),
            )
            if candidate not in alive:
                return False
        return True

    alive = set(positions)
    changed = True
    while changed:
        changed = False
        for position in list(alive):
            if not survives(position, alive):
                alive.discard(position)
                changed = True
    return (frozenset(), ()) in alive


def cq_indistinguishable(
    database: Database, left: Element, right: Element
) -> bool:
    """Whether no CQ at all separates the two elements.

    ``left`` and ``right`` agree on every CQ iff ``(D, left) → (D, right)``
    and vice versa (the canonical query of the whole pointed database is
    itself a CQ).  The brute-ness here is the quadratic pair enumeration in
    :func:`cq_separable`; the individual checks go through the shared
    engine, whose cache pays off because each entity appears in many pairs.
    """
    engine = default_engine()
    return engine.pointed_has_homomorphism(
        database, (left,), database, (right,)
    ) and engine.pointed_has_homomorphism(database, (right,), database, (left,))


def cq_separable(training: TrainingDatabase) -> bool:
    """CQ-SEP by the Kimelfeld–Ré characterization.

    A training database is CQ-separable iff no two differently-labeled
    entities are CQ-indistinguishable (CQ is closed under conjunction, so
    distinguishability implies linear separability by the staircase
    construction).  Each check is a pair of NP homomorphism tests — this is
    the coNP procedure behind Theorem 3.2.
    """
    entities = sorted(training.entities, key=repr)
    database = training.database
    for i, left in enumerate(entities):
        for right in entities[i + 1:]:
            if training.label(left) == training.label(right):
                continue
            if cq_indistinguishable(database, left, right):
                return False
    return True


def ghw_separable_lower_bound(
    training: TrainingDatabase,
    k: int,
    max_atoms: int,
) -> Optional[bool]:
    """A one-sided GHW(k)-SEP check via small-feature enumeration.

    Enumerates all feature queries with at most ``max_atoms`` atoms, keeps
    those of ghw ≤ k, and checks exact linear separability of the resulting
    vectors.  Returns ``True`` when they separate (then the database is
    certainly GHW(k)-separable) and ``None`` otherwise (larger features
    might still separate — see Theorem 5.7).
    """
    from repro.core.separability import feature_pool

    pool = [
        query
        for query in feature_pool(training, max_atoms)
        if ghw_at_most(query, k)
    ]
    engine = default_engine()
    entities = sorted(training.entities, key=repr)
    labels = [training.label(entity) for entity in entities]
    answers = [
        engine.evaluate_unary(query, training.database) for query in pool
    ]
    vectors = [
        tuple(1 if entity in answer else -1 for answer in answers)
        for entity in entities
    ]
    if is_linearly_separable(vectors, labels):
        return True
    return None


def min_pool_dimension(
    training: TrainingDatabase, pool: Sequence[CQ]
) -> Optional[int]:
    """Minimal number of pool features whose vectors separate the labels."""
    entities = sorted(training.entities, key=repr)
    labels = [training.label(entity) for entity in entities]
    if all(label == labels[0] for label in labels):
        return 0
    engine = default_engine()
    answers = [
        engine.evaluate_unary(query, training.database) for query in pool
    ]
    distinct = sorted(
        {
            frozenset(answer & set(entities))
            for answer in answers
        },
        key=lambda s: (len(s), sorted(map(repr, s))),
    )
    for size in range(1, len(distinct) + 1):
        for chosen in combinations(distinct, size):
            vectors = [
                tuple(1 if entity in d else -1 for d in chosen)
                for entity in entities
            ]
            if is_linearly_separable(vectors, labels):
                return size
    return None
