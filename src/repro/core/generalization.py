"""Holdout generalization experiments (the paper's PAC future-work angle).

Section 9 points to PAC-style learning over databases (Grohe et al. [14,
15]) as the natural next step.  This module provides the empirical
scaffolding: split a training database's entities into train/test folds,
fit a separating pair (or Algorithm 1 device) on the visible fold only, and
measure accuracy on the held-out entities.

Splitting keeps the *database* intact — features may inspect all facts —
and hides only the held-out labels, matching the transductive setting of
the paper's L-CLS problem (the evaluation database shares the schema and
here shares the data).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, FrozenSet, Optional, Tuple

from repro.data.labeling import Labeling, TrainingDatabase
from repro.exceptions import SeparabilityError
from repro.core.languages import BoundedAtomsCQ, GhwClass, QueryClass
from repro.core.pipeline import FeatureEngineeringSession

__all__ = ["HoldoutResult", "split_entities", "holdout_evaluation"]

Element = Any


@dataclass(frozen=True)
class HoldoutResult:
    """Accuracy of a session trained on one fold, tested on the other."""

    language: str
    train_entities: int
    test_entities: int
    train_separable: bool
    correct: int

    @property
    def accuracy(self) -> float:
        if self.test_entities == 0:
            return 1.0
        return self.correct / self.test_entities


def split_entities(
    training: TrainingDatabase,
    test_fraction: float,
    seed: int = 0,
) -> Tuple[FrozenSet[Element], FrozenSet[Element]]:
    """A deterministic (train, test) split of the entity set.

    Both folds are nonempty whenever the database has ≥ 2 entities and the
    fraction is strictly inside (0, 1).
    """
    if not 0 < test_fraction < 1:
        raise SeparabilityError("test_fraction must lie strictly in (0, 1)")
    entities = sorted(training.entities, key=repr)
    if len(entities) < 2:
        raise SeparabilityError("need at least two entities to split")
    rng = random.Random(seed)
    shuffled = list(entities)
    rng.shuffle(shuffled)
    n_test = min(
        max(1, round(test_fraction * len(entities))), len(entities) - 1
    )
    test = frozenset(shuffled[:n_test])
    train = frozenset(shuffled[n_test:])
    return train, test


def _restrict_to_fold(
    training: TrainingDatabase, fold: FrozenSet[Element]
) -> TrainingDatabase:
    """The same facts, with only the fold's elements declared entities."""
    entity_symbol = training.database.entity_symbol
    from repro.data.database import Database, Fact

    facts = [
        fact
        for fact in training.database.facts
        if fact.relation != entity_symbol
    ]
    facts.extend(
        Fact(entity_symbol, (entity,)) for entity in sorted(fold, key=repr)
    )
    database = Database(facts, schema=training.database.schema)
    labels = {entity: training.label(entity) for entity in fold}
    return TrainingDatabase(database, Labeling(labels))


def holdout_evaluation(
    training: TrainingDatabase,
    language: QueryClass,
    test_fraction: float = 0.3,
    seed: int = 0,
    epsilon: float = 0.0,
) -> HoldoutResult:
    """Train on a fold, classify the held-out entities, count agreements.

    A non-separable training fold yields ``train_separable=False`` and zero
    correct answers (callers may retry with an ``epsilon`` budget).
    """
    train_fold, test_fold = split_entities(training, test_fraction, seed)
    visible = _restrict_to_fold(training, train_fold)
    hidden = _restrict_to_fold(training, test_fold)

    session = FeatureEngineeringSession(visible, language, epsilon)
    if not session.separable:
        return HoldoutResult(
            repr(language), len(train_fold), len(test_fold), False, 0
        )
    predicted = session.classify(hidden.database)
    correct = sum(
        1
        for entity in test_fold
        if predicted[entity] == training.label(entity)
    )
    return HoldoutResult(
        repr(language), len(train_fold), len(test_fold), True, correct
    )
