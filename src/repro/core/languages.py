"""Feature-query language descriptors: CQ, GHW(k), CQ[m], CQ[m, p].

The bounded-dimension separability algorithms (Section 6) are parameterized
by a class L of CQs; these descriptors bundle the two capabilities those
algorithms need:

- solving L-QBE over a database (the oracle of Lemma 6.3's test), and
- when the class is finite for a fixed schema (the CQ[m] family),
  enumerating the realizable entity dichotomies directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Iterable, List, Optional, Sequence, Set

from repro.cq.evaluation import evaluate_unary
from repro.data.database import Database
from repro.exceptions import SeparabilityError

__all__ = ["QueryClass", "AllCQ", "GhwClass", "BoundedAtomsCQ", "CQ_ALL"]

Element = Any


class QueryClass:
    """Base descriptor of a class of (unary) conjunctive queries."""

    name: str = "L"

    def qbe(
        self,
        database: Database,
        positives: Iterable[Element],
        negatives: Iterable[Element],
    ) -> bool:
        """Decide L-QBE on ``(database, positives, negatives)``."""
        raise NotImplementedError

    def entity_dichotomies(
        self, database: Database, entities: Sequence[Element]
    ) -> List[FrozenSet[Element]]:
        """All sets ``q(D) ∩ entities`` for ``q`` in the class.

        The generic implementation tests every nonempty subset with the QBE
        oracle (2^n oracle calls); finite classes override it with direct
        evaluation of their query pool.
        """
        if len(entities) > 16:
            raise SeparabilityError(
                f"dichotomy enumeration over {len(entities)} entities is "
                "too large (limit 16)"
            )
        entity_list = list(entities)
        realizable: List[FrozenSet[Element]] = []
        for mask in range(1, 2 ** len(entity_list)):
            chosen = frozenset(
                entity
                for index, entity in enumerate(entity_list)
                if mask & (1 << index)
            )
            rest = [e for e in entity_list if e not in chosen]
            if self.qbe(database, chosen, rest):
                realizable.append(chosen)
        return realizable

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True, repr=False)
class AllCQ(QueryClass):
    """The unrestricted class CQ of all conjunctive queries."""

    name: str = "CQ"

    def qbe(
        self,
        database: Database,
        positives: Iterable[Element],
        negatives: Iterable[Element],
    ) -> bool:
        from repro.core.qbe import cq_qbe

        return cq_qbe(database, positives, negatives)


@dataclass(frozen=True, repr=False)
class GhwClass(QueryClass):
    """GHW(k): CQs of generalized hypertree width at most k."""

    k: int = 1

    def __post_init__(self) -> None:
        if self.k < 1:
            raise SeparabilityError("GHW(k) requires k >= 1")
        object.__setattr__(self, "name", f"GHW({self.k})")

    def qbe(
        self,
        database: Database,
        positives: Iterable[Element],
        negatives: Iterable[Element],
    ) -> bool:
        from repro.core.qbe import ghw_qbe

        return ghw_qbe(database, positives, negatives, self.k)


@dataclass(frozen=True, repr=False)
class BoundedAtomsCQ(QueryClass):
    """CQ[m] / CQ[m, p]: at most m atoms, optionally ≤ p occurrences per variable.

    In the separability setting atoms are counted without the entity atom
    ``η(x)``; set ``count_entity_atom=False`` (the default) accordingly, or
    ``True`` for the generic-QBE convention where no atom is free.
    """

    max_atoms: int = 1
    max_occurrences: Optional[int] = None
    count_entity_atom: bool = False

    def __post_init__(self) -> None:
        if self.max_atoms < 1:
            raise SeparabilityError("CQ[m] requires m >= 1")
        suffix = (
            f"{self.max_atoms}"
            if self.max_occurrences is None
            else f"{self.max_atoms},{self.max_occurrences}"
        )
        object.__setattr__(self, "name", f"CQ[{suffix}]")

    def _pool(self, database: Database):
        if self.count_entity_atom:
            from repro.cq.enumeration import enumerate_unary_queries

            return enumerate_unary_queries(
                database.schema,
                self.max_atoms,
                max_occurrences=self.max_occurrences,
            )
        from repro.data.labeling import Labeling, TrainingDatabase
        from repro.core.separability import feature_pool

        entities = database.entities()
        training = TrainingDatabase(
            database, Labeling({entity: 1 for entity in entities})
        )
        return feature_pool(
            training, self.max_atoms, self.max_occurrences
        )

    def qbe(
        self,
        database: Database,
        positives: Iterable[Element],
        negatives: Iterable[Element],
    ) -> bool:
        positive_set = set(positives)
        negative_set = set(negatives)
        for query in self._pool(database):
            answers = evaluate_unary(query, database)
            if positive_set <= answers and not answers & negative_set:
                return True
        return False

    def entity_dichotomies(
        self, database: Database, entities: Sequence[Element]
    ) -> List[FrozenSet[Element]]:
        entity_set = set(entities)
        seen: Set[FrozenSet[Element]] = set()
        for query in self._pool(database):
            answers = frozenset(
                evaluate_unary(query, database) & entity_set
            )
            seen.add(answers)
        return sorted(seen, key=lambda s: (len(s), sorted(map(repr, s))))


#: Shared instance of the unrestricted class.
CQ_ALL = AllCQ()
