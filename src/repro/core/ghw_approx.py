"""Algorithm 2: approximate GHW(k)-separability (paper, Section 7.2).

Theorem 7.4: relabeling every ``→_k``-equivalence class by its majority
label yields, in polynomial time, the GHW(k)-separable labeling closest to
the input labeling.  Corollary 7.5 then solves GHW(k)-ApxSep (compare the
minimal disagreement against the budget ``ε·|η(D)|``) and GHW(k)-ApxCls
(classify with Algorithm 1 under the repaired labeling).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Tuple

from repro.covergame.equivalence import CoverPreorder
from repro.data.database import Database
from repro.data.labeling import Labeling, TrainingDatabase
from repro.exceptions import SeparabilityError
from repro.core.ghw_classify import GhwClassifier

__all__ = [
    "GhwApproximation",
    "ghw_best_relabeling",
    "ghw_approx_separable",
    "ghw_approx_classify",
]

Element = Any


@dataclass(frozen=True)
class GhwApproximation:
    """The optimal GHW(k)-separable repair of a labeling.

    ``disagreement`` is the minimal number of entities any GHW(k)-separable
    labeling must flip (Theorem 7.4's optimality), and ``relabeled`` is the
    witness produced by majority vote per equivalence class.
    """

    relabeled: Labeling
    disagreement: int
    classes: Tuple[FrozenSet[Element], ...]

    def error_rate(self) -> float:
        total = len(self.relabeled)
        return self.disagreement / total if total else 0.0


def ghw_best_relabeling(
    training: TrainingDatabase, k: int
) -> GhwApproximation:
    """Algorithm 2: majority relabeling per ``→_k``-equivalence class."""
    preorder = CoverPreorder(
        training.database, sorted(training.entities, key=repr), k
    )
    labels = {}
    for cls in preorder.equivalence_classes():
        vote = sum(training.label(entity) for entity in cls)
        majority = 1 if vote >= 0 else -1
        for entity in cls:
            labels[entity] = majority
    relabeled = Labeling(labels)
    disagreement = relabeled.disagreement(training.labeling)
    return GhwApproximation(
        relabeled, disagreement, tuple(preorder.equivalence_classes())
    )


def ghw_approx_separable(
    training: TrainingDatabase, k: int, epsilon: float
) -> bool:
    """GHW(k)-ApxSep: separable with an ε fraction of errors (Cor 7.5)?"""
    if not 0 <= epsilon < 1:
        raise SeparabilityError("epsilon must lie in [0, 1)")
    approximation = ghw_best_relabeling(training, k)
    return approximation.disagreement <= epsilon * len(training.entities)


def ghw_approx_classify(
    training: TrainingDatabase,
    evaluation: Database,
    k: int,
    epsilon: float,
) -> Labeling:
    """GHW(k)-ApxCls: classify an evaluation database under ε noise.

    Repairs the training labeling optimally (Theorem 7.4), checks it meets
    the error budget, then runs Algorithm 1 on the repaired labeling.
    """
    if not 0 <= epsilon < 1:
        raise SeparabilityError("epsilon must lie in [0, 1)")
    approximation = ghw_best_relabeling(training, k)
    if approximation.disagreement > epsilon * len(training.entities):
        raise SeparabilityError(
            f"training database is not GHW({k})-separable with error "
            f"{epsilon}: minimal disagreement is "
            f"{approximation.disagreement}/{len(training.entities)}"
        )
    repaired = training.relabel(approximation.relabeled)
    return GhwClassifier(repaired, k).classify(evaluation)
