"""Query-By-Example solvers (paper, Section 6.1).

``L-QBE``: given a database D and disjoint unary relations S+ and S−, decide
whether some query q in L satisfies ``S+ ⊆ q(D)`` and ``q(D) ∩ S− = ∅``.

- **CQ-QBE** uses the product-homomorphism method of ten Cate & Dalmau [32]:
  the direct product ``P = Π_{a ∈ S+} (D, a)`` (as a unary canonical query)
  is the most specific query selecting every positive example, so an
  explanation exists iff ``(P, ā) ↛ (D, b)`` for every ``b ∈ S−``.  The
  product is exponential in ``|S+|``, matching the problem's
  coNEXPTIME-completeness (Theorem 6.1).
- **GHW(k)-QBE** replaces ``→`` by ``→_k``: because GHW(k) is closed under
  conjunction and ``→_k`` captures GHW(k)-query transfer (Prop 5.2), an
  explanation exists iff ``(P, ā) ↛_k (D, b)`` for every negative example —
  an EXPTIME procedure, again matching Theorem 6.1.
- **CQ[m]-QBE** (and CQ[m, p]-QBE) enumerates the finite query class
  (Prop 6.11 shows even CQ[1]-QBE is NP-complete when the schema is not
  fixed; enumeration is exponential in the schema, polynomial for a fixed
  one).
"""

from __future__ import annotations

from typing import Any, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.cq.engine import EvaluationEngine, default_engine
from repro.cq.enumeration import enumerate_unary_queries
from repro.cq.query import CQ
from repro.cq.terms import Atom, Variable
from repro.data.database import Database
from repro.data.product import pointed_product
from repro.exceptions import SeparabilityError

__all__ = [
    "positive_example_product",
    "pointed_component_product",
    "cq_qbe",
    "cq_qbe_explanation",
    "ghw_qbe",
    "cqm_qbe",
    "is_explanation",
]

Element = Any

#: Refuse to materialize product queries with more facts than this.
_MAX_PRODUCT_FACTS = 200_000


def _validate_examples(
    database: Database,
    positives: Iterable[Element],
    negatives: Iterable[Element],
) -> Tuple[Tuple[Element, ...], Tuple[Element, ...]]:
    positive_tuple = tuple(sorted(set(positives), key=repr))
    negative_tuple = tuple(sorted(set(negatives), key=repr))
    if not positive_tuple:
        raise SeparabilityError("QBE requires at least one positive example")
    overlap = set(positive_tuple) & set(negative_tuple)
    if overlap:
        raise SeparabilityError(
            f"examples {sorted(map(repr, overlap))} are both positive "
            "and negative"
        )
    domain = database.domain
    for example in positive_tuple + negative_tuple:
        if example not in domain:
            raise SeparabilityError(
                f"example {example!r} is not in dom(D)"
            )
    return positive_tuple, negative_tuple


def positive_example_product(
    database: Database, positives: Sequence[Element]
) -> Tuple[Database, Element]:
    """``Π_{a ∈ S+} (D, a)``: the canonical QBE candidate, as a pointed DB."""
    product, point = pointed_product(
        [(database, example) for example in positives]
    )
    return product, point


def pointed_component_product(
    database: Database, positives: Sequence[Element]
) -> Tuple[Database, Element]:
    """The point's connected component of ``Π_{a ∈ S+} (D, a)``.

    Equivalent to the full product for every pointed decision made here
    (every component of a self-product maps into D by projection, so only
    the point's component constrains ``(P, ā) → (D, b)`` and — through
    Prop 5.2 — ``(P, ā) →_k (D, b)``), but avoids materializing the
    unary-relation fact explosion of the full product.
    """
    from repro.data.product import pointed_product_component

    return pointed_product_component(
        [(database, example) for example in positives]
    )


def cq_qbe(
    database: Database,
    positives: Iterable[Element],
    negatives: Iterable[Element],
    engine: Optional[EvaluationEngine] = None,
) -> bool:
    """CQ-QBE decision by the product-homomorphism method."""
    active = engine or default_engine()
    positive_tuple, negative_tuple = _validate_examples(
        database, positives, negatives
    )
    product, point = pointed_component_product(database, positive_tuple)
    return not any(
        active.has_homomorphism(product, database, {point: negative})
        for negative in negative_tuple
    )


def cq_qbe_explanation(
    database: Database,
    positives: Iterable[Element],
    negatives: Iterable[Element],
    max_facts: int = _MAX_PRODUCT_FACTS,
) -> Optional[CQ]:
    """A materialized CQ explanation (the product query), or ``None``.

    The product's elements become variables; only the connected component of
    the distinguished point is kept (disconnected parts assert only the
    existence of facts D itself provides, so dropping them preserves the
    explanation property over D).
    """
    positive_tuple, negative_tuple = _validate_examples(
        database, positives, negatives
    )
    if not cq_qbe(database, positive_tuple, negative_tuple):
        return None
    product, point = pointed_component_product(database, positive_tuple)
    if len(product) > max_facts:
        raise SeparabilityError(
            f"product query has {len(product)} facts, over max_facts="
            f"{max_facts}"
        )

    component = {point}
    changed = True
    facts = list(product.facts)
    while changed:
        changed = False
        for fact in facts:
            fact_elements = set(fact.arguments)
            if fact_elements & component and not fact_elements <= component:
                component |= fact_elements
                changed = True
    names = {
        element: Variable(f"p{index}") if element != point else Variable("x")
        for index, element in enumerate(sorted(component, key=repr))
    }
    atoms = [
        Atom(fact.relation, tuple(names[a] for a in fact.arguments))
        for fact in facts
        if set(fact.arguments) <= component
    ]
    return CQ(atoms, (Variable("x"),))


def ghw_qbe(
    database: Database,
    positives: Iterable[Element],
    negatives: Iterable[Element],
    k: int,
    engine: Optional[EvaluationEngine] = None,
) -> bool:
    """GHW(k)-QBE decision: the product under ``→_k`` instead of ``→``."""
    active = engine or default_engine()
    positive_tuple, negative_tuple = _validate_examples(
        database, positives, negatives
    )
    product, point = pointed_component_product(database, positive_tuple)
    return not any(
        active.cover_game(product, (point,), database, (negative,), k)
        for negative in negative_tuple
    )


def cqm_qbe(
    database: Database,
    positives: Iterable[Element],
    negatives: Iterable[Element],
    max_atoms: int,
    max_occurrences: Optional[int] = None,
    engine: Optional[EvaluationEngine] = None,
) -> Optional[CQ]:
    """CQ[m]-QBE by enumeration; returns an explanation or ``None``."""
    active = engine or default_engine()
    positive_tuple, negative_tuple = _validate_examples(
        database, positives, negatives
    )
    positive_set = set(positive_tuple)
    negative_set = set(negative_tuple)
    for query in enumerate_unary_queries(
        database.schema, max_atoms, max_occurrences=max_occurrences
    ):
        answers = active.evaluate_unary(query, database)
        if positive_set <= answers and not answers & negative_set:
            return query
    return None


def is_explanation(
    query: CQ,
    database: Database,
    positives: Iterable[Element],
    negatives: Iterable[Element],
    engine: Optional[EvaluationEngine] = None,
) -> bool:
    """Verify the explanation property ``S+ ⊆ q(D)`` and ``q(D) ∩ S− = ∅``."""
    answers = (engine or default_engine()).evaluate_unary(query, database)
    return set(positives) <= answers and not answers & set(negatives)
