"""The paper's algorithms: separability, generation, classification."""

from repro.core.approx import (
    CqmApproxResult,
    cqm_approx_classify,
    cqm_approx_separability,
)
from repro.core.cq_generate import (
    CqClassifier,
    canonical_feature,
    cq_classify,
    generate_cq_statistic,
)
from repro.core.dimension import (
    BoundedDimensionResult,
    bounded_dimension_separable,
    materialize_bounded_pair,
    min_dimension,
    realizable_dichotomies,
)
from repro.core.ghw_approx import (
    GhwApproximation,
    ghw_approx_classify,
    ghw_approx_separable,
    ghw_best_relabeling,
)
from repro.core.ghw_classify import GhwClassifier, ghw_classify
from repro.core.ghw_generate import generate_ghw_statistic
from repro.core.ghw_sep import GhwSeparability, ghw_separability, ghw_separable
from repro.core.languages import (
    CQ_ALL,
    AllCQ,
    BoundedAtomsCQ,
    GhwClass,
    QueryClass,
)
from repro.core.qbe import (
    cq_qbe,
    cq_qbe_explanation,
    cqm_qbe,
    ghw_qbe,
    is_explanation,
    positive_example_product,
)
from repro.core.report import (
    ProfileRow,
    SeparabilityProfile,
    separability_profile,
)
from repro.core.reductions import (
    PaddedInstance,
    pad_for_approximation,
    qbe_to_bounded_dimension,
)
from repro.core.generalization import (
    HoldoutResult,
    holdout_evaluation,
    split_entities,
)
from repro.core.minimize import (
    exact_minimize,
    greedy_minimize,
    prune_zero_weights,
    sparse_minimize,
)
from repro.core.pipeline import (
    FeatureEngineeringSession,
    SessionReport,
)
from repro.core.separability import (
    SeparabilityResult,
    cqm_separability,
    feature_pool,
)
from repro.core.statistic import SeparatingPair, Statistic

__all__ = [
    "FeatureEngineeringSession",
    "SessionReport",
    "ProfileRow",
    "SeparabilityProfile",
    "separability_profile",
    "HoldoutResult",
    "holdout_evaluation",
    "split_entities",
    "prune_zero_weights",
    "sparse_minimize",
    "greedy_minimize",
    "exact_minimize",
    "Statistic",
    "SeparatingPair",
    "SeparabilityResult",
    "cqm_separability",
    "feature_pool",
    "GhwSeparability",
    "ghw_separability",
    "ghw_separable",
    "GhwClassifier",
    "ghw_classify",
    "CqClassifier",
    "cq_classify",
    "generate_cq_statistic",
    "canonical_feature",
    "generate_ghw_statistic",
    "GhwApproximation",
    "ghw_best_relabeling",
    "ghw_approx_separable",
    "ghw_approx_classify",
    "CqmApproxResult",
    "cqm_approx_separability",
    "cqm_approx_classify",
    "QueryClass",
    "AllCQ",
    "GhwClass",
    "BoundedAtomsCQ",
    "CQ_ALL",
    "cq_qbe",
    "cq_qbe_explanation",
    "ghw_qbe",
    "cqm_qbe",
    "is_explanation",
    "positive_example_product",
    "BoundedDimensionResult",
    "bounded_dimension_separable",
    "materialize_bounded_pair",
    "min_dimension",
    "realizable_dichotomies",
    "PaddedInstance",
    "pad_for_approximation",
    "qbe_to_bounded_dimension",
]
