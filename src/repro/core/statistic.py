"""Statistics: sequences of feature queries (paper, Section 3).

A statistic ``Π = (q1, ..., qn)`` maps every entity ``e`` of a database to
the ±1 vector ``Π^D(e) = (1_{q1(D)}(e), ..., 1_{qn(D)}(e))``.  Together with
a linear classifier it forms a *separating pair*.

Vector materialization goes through the
:class:`~repro.cq.engine.EvaluationEngine` batch entry points, so repeated
classification against the same database reuses cached query answers.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.cq.engine import EvaluationEngine, default_engine

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.runtime.executor import Executor
from repro.cq.query import CQ
from repro.data.database import Database
from repro.data.labeling import Labeling, TrainingDatabase
from repro.exceptions import QueryError, SeparabilityError
from repro.linsep.classifier import LinearClassifier

__all__ = ["Statistic", "SeparatingPair"]

Element = Any


class Statistic:
    """An immutable sequence of unary feature queries."""

    __slots__ = ("_queries",)

    def __init__(self, queries: Iterable[CQ]) -> None:
        query_tuple = tuple(queries)
        for query in query_tuple:
            if not query.is_unary:
                raise QueryError(
                    f"statistics consist of unary feature queries, got {query}"
                )
        self._queries = query_tuple

    @property
    def queries(self) -> Tuple[CQ, ...]:
        return self._queries

    @property
    def dimension(self) -> int:
        """The number of feature queries (the regularized quantity of §6)."""
        return len(self._queries)

    def max_atoms(self) -> int:
        """The largest body size among the feature queries."""
        return max(
            (query.atom_count() for query in self._queries), default=0
        )

    def __iter__(self) -> Iterator[CQ]:
        return iter(self._queries)

    def __len__(self) -> int:
        return len(self._queries)

    def __getitem__(self, index: int) -> CQ:
        return self._queries[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Statistic):
            return NotImplemented
        return self._queries == other._queries

    def __hash__(self) -> int:
        return hash(self._queries)

    def __repr__(self) -> str:
        return f"Statistic(dimension={self.dimension})"

    # ------------------------------------------------------------------

    def vector(
        self,
        database: Database,
        entity: Element,
        engine: Optional[EvaluationEngine] = None,
    ) -> Tuple[int, ...]:
        """``Π^D(e)`` for a single entity (memoized pointed checks)."""
        return (engine or default_engine()).indicator_vector(
            self._queries, database, entity
        )

    def vectors(
        self,
        database: Database,
        entities: Optional[Sequence[Element]] = None,
        engine: Optional[EvaluationEngine] = None,
        executor: Optional["Executor"] = None,
    ) -> Dict[Element, Tuple[int, ...]]:
        """``Π^D`` over all (or the given) entities, evaluated batch-wise.

        Each feature query is evaluated once over the database (and the
        engine memoizes the answer), so the cost is ``dimension`` query
        evaluations rather than ``dimension × n`` pointed checks.  A
        multi-worker :class:`~repro.runtime.Executor` shards the
        per-query evaluations across worker processes.
        """
        return (engine or default_engine()).evaluate_statistic(
            self._queries, database, entities, executor=executor
        )

    def training_collection(
        self,
        training: TrainingDatabase,
        engine: Optional[EvaluationEngine] = None,
        executor: Optional["Executor"] = None,
    ) -> Tuple[List[Tuple[int, ...]], List[int], List[Element]]:
        """``(Π^D(e), λ(e))`` rows in a deterministic entity order."""
        entities = sorted(training.entities, key=repr)
        vector_map = self.vectors(
            training.database, entities, engine=engine, executor=executor
        )
        vectors = [vector_map[entity] for entity in entities]
        labels = [training.label(entity) for entity in entities]
        return vectors, labels, entities


class SeparatingPair:
    """A statistic together with a linear classifier, ``(Π, Λ_w̄)``."""

    __slots__ = ("_statistic", "_classifier")

    def __init__(
        self, statistic: Statistic, classifier: LinearClassifier
    ) -> None:
        if classifier.arity != statistic.dimension:
            raise SeparabilityError(
                f"classifier arity {classifier.arity} does not match "
                f"statistic dimension {statistic.dimension}"
            )
        self._statistic = statistic
        self._classifier = classifier

    @property
    def statistic(self) -> Statistic:
        return self._statistic

    @property
    def classifier(self) -> LinearClassifier:
        return self._classifier

    def predict(
        self,
        database: Database,
        entity: Element,
        engine: Optional[EvaluationEngine] = None,
    ) -> int:
        """``Λ_w̄(Π^D(e))``."""
        return self._classifier.predict(
            self._statistic.vector(database, entity, engine=engine)
        )

    def classify(
        self,
        database: Database,
        engine: Optional[EvaluationEngine] = None,
        executor: Optional["Executor"] = None,
    ) -> Labeling:
        """The labeling of all entities of an evaluation database."""
        vector_map = self._statistic.vectors(
            database, engine=engine, executor=executor
        )
        return Labeling(
            {
                entity: self._classifier.predict(vector)
                for entity, vector in vector_map.items()
            }
        )

    def errors(
        self,
        training: TrainingDatabase,
        engine: Optional[EvaluationEngine] = None,
    ) -> int:
        """Number of training entities classified against their label."""
        vectors, labels, _ = self._statistic.training_collection(
            training, engine=engine
        )
        return self._classifier.errors(vectors, labels)

    def separates(
        self,
        training: TrainingDatabase,
        engine: Optional[EvaluationEngine] = None,
    ) -> bool:
        """Whether the pair classifies every training entity correctly."""
        return self.errors(training, engine=engine) == 0

    def __repr__(self) -> str:
        return (
            f"SeparatingPair(dimension={self._statistic.dimension}, "
            f"classifier={self._classifier!r})"
        )
