"""Dimension-collapse and unbounded-dimension properties (paper, Section 8).

Theorem 8.4 characterizes the dimension-collapse property of a language L by
a definability condition: for every database, the family
``∪_{q ∈ L} {q(D), η(D) \\ q(D)}`` must be closed under intersection.  This
module provides the finite checker for that condition (applied to the
realizable dichotomies computed by :mod:`repro.core.dimension`), and the
linear-family machinery of Prop 8.6 used to prove the unbounded-dimension
property of CQ, GHW(k) and Σ⁺_k (Theorem 8.7).
"""

from __future__ import annotations

from typing import (
    Any,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.data.labeling import TrainingDatabase
from repro.exceptions import SeparabilityError

__all__ = [
    "closed_under_intersection",
    "intersection_closure_witness",
    "is_linear_family",
    "alternation_lower_bound",
]

Element = Any


def _with_complements(
    sets: Iterable[FrozenSet[Element]], universe: FrozenSet[Element]
) -> Set[FrozenSet[Element]]:
    family: Set[FrozenSet[Element]] = set()
    for entity_set in sets:
        family.add(frozenset(entity_set))
        family.add(universe - entity_set)
    return family


def intersection_closure_witness(
    sets: Iterable[FrozenSet[Element]],
    universe: Iterable[Element],
) -> Optional[Tuple[FrozenSet[Element], FrozenSet[Element]]]:
    """A pair of family members whose intersection escapes the family.

    The family is ``{q(D), η(D) \\ q(D) : q ∈ L}`` as in Theorem 8.4;
    ``None`` means the family is closed under intersection on this database
    (the collapse condition holds here).
    """
    universe_set = frozenset(universe)
    family = _with_complements(sets, universe_set)
    members = sorted(family, key=lambda s: (len(s), sorted(map(repr, s))))
    for i, left in enumerate(members):
        for right in members[i:]:
            if left & right not in family:
                return left, right
    return None


def closed_under_intersection(
    sets: Iterable[FrozenSet[Element]],
    universe: Iterable[Element],
) -> bool:
    """Theorem 8.4's condition, evaluated on one database's dichotomies."""
    return intersection_closure_witness(sets, universe) is None


def is_linear_family(sets: Iterable[FrozenSet[Element]]) -> bool:
    """Whether the family is linear: any two members are ⊆-comparable.

    Prop 8.6: if L realizes arbitrarily large linear families, then L has
    the unbounded-dimension property.
    """
    members = sorted(set(map(frozenset, sets)), key=len)
    for i, left in enumerate(members):
        for right in members[i + 1:]:
            if not left <= right:
                return False
    return True


def alternation_lower_bound(
    training: TrainingDatabase,
    chain: Sequence[Element],
) -> int:
    """A lower bound on the separating dimension over a linear family.

    If every realizable entity set is a prefix of ``chain`` (a linear
    family ordered along the chain), then each feature vector coordinate is
    a threshold function of the chain position, so a statistic of dimension
    d yields scores that change at most d times along the chain: the number
    of label alternations along ``chain`` divided by... precisely, at least
    ``alternations`` thresholds are needed, where ``alternations`` is the
    number of adjacent label changes minus... we report the simple bound
    ``alternations`` (each sign change of the score consumes at least one
    threshold).
    """
    labels = [training.label(entity) for entity in chain]
    if len(labels) != len(set(chain)):
        raise SeparabilityError("chain must enumerate distinct entities")
    alternations = sum(
        1
        for left, right in zip(labels, labels[1:])
        if left != right
    )
    return alternations
