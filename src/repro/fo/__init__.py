"""First-order feature languages: FO-separability and dimension properties."""

from repro.fo.dimension_properties import (
    alternation_lower_bound,
    closed_under_intersection,
    intersection_closure_witness,
    is_linear_family,
)
from repro.fo.fragments import (
    EXISTENTIAL_POSITIVE,
    FO,
    ExistentialPositive,
    FirstOrder,
)
from repro.fo.isomorphism import (
    isomorphism_classes,
    pointed_isomorphic,
    to_colored_graph,
)
from repro.fo.separability import (
    FoSeparability,
    fo_classify,
    fo_separability,
    fo_separable,
)

__all__ = [
    "FirstOrder",
    "ExistentialPositive",
    "FO",
    "EXISTENTIAL_POSITIVE",
    "pointed_isomorphic",
    "isomorphism_classes",
    "to_colored_graph",
    "FoSeparability",
    "fo_separability",
    "fo_separable",
    "fo_classify",
    "closed_under_intersection",
    "intersection_closure_witness",
    "is_linear_family",
    "alternation_lower_bound",
]
