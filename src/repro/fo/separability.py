"""FO-separability and FO-classification (paper, Section 8).

Prop 8.1 (dimension collapse): a training database is FO-separable iff a
*single* FO feature separates it.  Over a finite database, entities are
FO-indistinguishable iff pointed-isomorphic, and the disjunction of the
(FO-definable) isomorphism types of the positive entities is a separating
single feature whenever no positive/negative pair shares a type.  Hence:

    (D, λ) is FO-separable  iff  no differently-labeled pair of entities
                                 has isomorphic pointed structures,

which also yields FO-CLS: a new entity is positive iff its pointed
evaluation structure is isomorphic to some positive training entity's
(matching no training type defaults to negative — the disjunction formula
is false there).  Cor 8.2's GI-completeness shows in the cost profile: each
test is one graph-isomorphism instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Tuple

from repro.data.database import Database
from repro.data.labeling import Labeling, TrainingDatabase
from repro.exceptions import NotSeparableError
from repro.fo.isomorphism import isomorphism_classes, pointed_isomorphic

__all__ = ["FoSeparability", "fo_separability", "fo_separable", "fo_classify"]

Element = Any


@dataclass(frozen=True)
class FoSeparability:
    """Outcome of the FO-separability test with witnesses."""

    separable: bool
    violations: Tuple[Tuple[Element, Element], ...]
    classes: Tuple[Tuple[Element, ...], ...]

    def __bool__(self) -> bool:
        return self.separable


def fo_separability(training: TrainingDatabase) -> FoSeparability:
    """The FO-SEP test: differently-labeled entities must differ in iso type."""
    classes = isomorphism_classes(
        training.database, sorted(training.entities, key=repr)
    )
    violations: List[Tuple[Element, Element]] = []
    for cls in classes:
        labels = {training.label(entity) for entity in cls}
        if len(labels) > 1:
            positive = next(e for e in cls if training.label(e) == 1)
            negative = next(e for e in cls if training.label(e) == -1)
            violations.append((positive, negative))
    return FoSeparability(not violations, tuple(violations), tuple(classes))


def fo_separable(training: TrainingDatabase) -> bool:
    """FO-SEP (= FO-SEP[1] by dimension collapse, Prop 8.1)."""
    return fo_separability(training).separable


def fo_classify(
    training: TrainingDatabase, evaluation: Database
) -> Labeling:
    """FO-CLS: label evaluation entities by the single type-disjunction feature.

    An evaluation entity is positive iff ``(D', f) ≅ (D, e)`` for some
    positive training entity ``e``; the implicit single FO feature is the
    disjunction of the positive isomorphism types over the training
    database.
    """
    result = fo_separability(training)
    if not result.separable:
        raise NotSeparableError(
            f"training database is not FO-separable; witness pairs: "
            f"{result.violations[:3]}"
        )
    positive_representatives = [
        cls[0]
        for cls in result.classes
        if training.label(cls[0]) == 1
    ]
    labels = {}
    for entity in sorted(evaluation.entities(), key=repr):
        matches = any(
            pointed_isomorphic(
                evaluation, (entity,), training.database, (representative,)
            )
            for representative in positive_representatives
        )
        labels[entity] = 1 if matches else -1
    return Labeling(labels)
