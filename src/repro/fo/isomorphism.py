"""Isomorphism of (pointed) relational structures (paper, Section 8).

Over a *finite* database, two entities satisfy the same FO formulas iff the
pointed structures are isomorphic — FO can axiomatize a finite structure up
to isomorphism.  FO-SEP therefore reduces to pointed-structure isomorphism
tests (and is GI-complete, Cor 8.2: Arenas & Díaz [4]).

Databases are encoded as vertex-colored directed graphs — one node per
element, one per fact, fact→element edges carrying the argument positions —
and matched with NetworkX's VF2.  Distinguished tuple entries are encoded as
extra element colors.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

import networkx as nx
from networkx.algorithms import isomorphism as nx_iso

from repro.data.database import Database
from repro.exceptions import DatabaseError

__all__ = [
    "to_colored_graph",
    "pointed_isomorphic",
    "isomorphism_classes",
]

Element = Any


def to_colored_graph(
    database: Database, pointed: Sequence[Element] = ()
) -> "nx.DiGraph":
    """Encode a (pointed) database as a vertex-colored digraph.

    Element nodes are colored by the positions at which they occur in the
    distinguished tuple; fact nodes by their relation; edges by the argument
    positions they represent.
    """
    graph = nx.DiGraph()
    point_colors: Dict[Element, Tuple[int, ...]] = {}
    for index, element in enumerate(pointed):
        point_colors.setdefault(element, ())
        point_colors[element] = point_colors[element] + (index,)
    for element in database.domain:
        graph.add_node(
            ("element", element),
            color=("element", point_colors.get(element, ())),
        )
    for fact_id, fact in enumerate(sorted(database.facts, key=repr)):
        fact_node = ("fact", fact_id)
        graph.add_node(fact_node, color=("fact", fact.relation))
        positions: Dict[Element, Tuple[int, ...]] = {}
        for position, element in enumerate(fact.arguments):
            positions.setdefault(element, ())
            positions[element] = positions[element] + (position,)
        for element, position_tuple in positions.items():
            graph.add_edge(
                fact_node, ("element", element), positions=position_tuple
            )
    return graph


def pointed_isomorphic(
    left: Database,
    left_tuple: Sequence[Element],
    right: Database,
    right_tuple: Sequence[Element],
) -> bool:
    """Whether ``(D, ā) ≅ (D', b̄)`` as pointed structures."""
    if len(left_tuple) != len(right_tuple):
        raise DatabaseError("pointed isomorphism requires equal-length tuples")
    for element in left_tuple:
        if element not in left.domain:
            raise DatabaseError(f"{element!r} not in dom(D)")
    for element in right_tuple:
        if element not in right.domain:
            raise DatabaseError(f"{element!r} not in dom(D')")
    if len(left) != len(right) or len(left.domain) != len(right.domain):
        return False
    graph_left = to_colored_graph(left, left_tuple)
    graph_right = to_colored_graph(right, right_tuple)
    matcher = nx_iso.DiGraphMatcher(
        graph_left,
        graph_right,
        node_match=lambda a, b: a["color"] == b["color"],
        edge_match=lambda a, b: a["positions"] == b["positions"],
    )
    return matcher.is_isomorphic()


def isomorphism_classes(
    database: Database, elements: Sequence[Element]
) -> List[Tuple[Element, ...]]:
    """Partition elements by pointed isomorphism of ``(D, e)``.

    These are exactly the FO-indistinguishability classes over the finite
    database (Section 8).
    """
    classes: List[List[Element]] = []
    for element in sorted(elements, key=repr):
        for existing in classes:
            if pointed_isomorphic(
                database, (element,), database, (existing[0],)
            ):
                existing.append(element)
                break
        else:
            classes.append([element])
    return [tuple(cls) for cls in classes]
