"""FO fragments as feature languages (paper, Section 8).

Implements the language descriptors needed to *measure* the Section 8
results over finite databases:

- :class:`FirstOrder` — full FO.  Over a finite database the realizable
  entity sets are exactly the unions of pointed-isomorphism classes (FO
  defines each iso type), which makes FO-SEP[ℓ] computable and exhibits the
  dimension-collapse property of Prop 8.1 concretely: the family is closed
  under intersection (Theorem 8.4), so one feature always suffices.
- :class:`ExistentialPositive` — ∃FO⁺.  By Prop 8.3(2) its separability
  coincides with CQ's; dichotomies are delegated to the CQ machinery.

Fragments in between (FOₖ, Σₖ) have the collapse property per Cor 8.5; over
the finite databases this library manipulates, their realizable families
coincide with full FO's once k exceeds the database size, so
:class:`FirstOrder` doubles as their measurable proxy (documented rather
than separately implemented).
"""

from __future__ import annotations

from itertools import combinations
from typing import Any, FrozenSet, Iterable, List, Sequence

from repro.data.database import Database
from repro.exceptions import SeparabilityError
from repro.fo.isomorphism import isomorphism_classes

__all__ = ["FirstOrder", "ExistentialPositive", "FO", "EXISTENTIAL_POSITIVE"]

Element = Any


class FirstOrder:
    """Full first-order logic as a feature language (finite-model view)."""

    name = "FO"
    has_dimension_collapse = True  # Prop 8.1

    def entity_dichotomies(
        self, database: Database, entities: Sequence[Element]
    ) -> List[FrozenSet[Element]]:
        """All unions of pointed-isomorphism classes of the entities."""
        classes = isomorphism_classes(database, entities)
        if len(classes) > 16:
            raise SeparabilityError(
                "too many isomorphism classes to enumerate unions"
            )
        family: List[FrozenSet[Element]] = []
        for r in range(len(classes) + 1):
            for chosen in combinations(classes, r):
                family.append(
                    frozenset(
                        element for cls in chosen for element in cls
                    )
                )
        return family

    def qbe(
        self,
        database: Database,
        positives: Iterable[Element],
        negatives: Iterable[Element],
    ) -> bool:
        """FO-QBE over a finite database: no positive/negative pair may be

        pointed-isomorphic (then the disjunction of positive iso types is
        an explanation; conversely FO cannot split an iso class)."""
        from repro.fo.isomorphism import pointed_isomorphic

        positive_list = list(positives)
        negative_list = list(negatives)
        return not any(
            pointed_isomorphic(
                database, (positive,), database, (negative,)
            )
            for positive in positive_list
            for negative in negative_list
        )

    def __repr__(self) -> str:
        return self.name


class ExistentialPositive:
    """∃FO⁺ — separability-equivalent to CQ (Prop 8.3(2))."""

    name = "existential-positive FO"
    has_dimension_collapse = False  # Theorem 8.7

    def entity_dichotomies(
        self, database: Database, entities: Sequence[Element]
    ) -> List[FrozenSet[Element]]:
        from repro.core.languages import CQ_ALL

        return CQ_ALL.entity_dichotomies(database, entities)

    def qbe(
        self,
        database: Database,
        positives: Iterable[Element],
        negatives: Iterable[Element],
    ) -> bool:
        from repro.core.qbe import cq_qbe

        return cq_qbe(database, positives, negatives)

    def __repr__(self) -> str:
        return self.name


#: Shared instances.
FO = FirstOrder()
EXISTENTIAL_POSITIVE = ExistentialPositive()
