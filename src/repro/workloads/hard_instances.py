"""Hard-instance families for the paper's lower-bound theorems.

The supplied paper text omits the appendix constructions of Theorem 5.7 and
Theorem 6.7, so this module provides substitute families with the same
certified behaviour (see DESIGN.md §3.5):

- :func:`example_6_2` — the paper's Example 6.2 verbatim (dimension 2 needed).
- :func:`prime_cycle_family` — disjoint directed cycles of distinct prime
  lengths, one marked node per cycle.  GHW(1)-separability is decided in
  polynomial time, yet any *path-shaped* feature selecting a set of cycle
  entities must have length congruent to a fixed residue modulo every
  selected prime, so single-feature statistics need ≈ lcm-length queries —
  super-polynomial in |D| (the measurable shape of Theorems 5.7 / 6.7).
- :func:`chain_family` — a directed path with alternating labels, realizing
  the *linear family* condition of Prop 8.6: every realizable entity set is
  a prefix, so separating dimension grows with the number of label
  alternations (Theorem 8.7's unbounded-dimension property, measurable).
"""

from __future__ import annotations

from math import lcm
from typing import Any, List, Optional, Sequence, Tuple

from repro.cq.evaluation import evaluate_unary
from repro.cq.query import CQ
from repro.cq.terms import Atom, Variable
from repro.data.database import Database, DatabaseBuilder
from repro.data.labeling import Labeling, TrainingDatabase
from repro.exceptions import SeparabilityError

__all__ = [
    "example_6_2",
    "prime_cycle_family",
    "chain_family",
    "clique_family",
    "path_to_marker_query",
    "minimal_path_feature_length",
]

Element = Any


def example_6_2() -> TrainingDatabase:
    """The paper's Example 6.2: separable with 2 features but not with 1."""
    database = Database.from_tuples(
        {
            "R": [("a",)],
            "S": [("a",), ("c",)],
            "eta": [("a",), ("b",), ("c",)],
        }
    )
    return TrainingDatabase.from_examples(
        database, positive=["a", "b"], negative=["c"]
    )


def prime_cycle_family(
    primes: Sequence[int],
    positive_indices: Optional[Sequence[int]] = None,
) -> TrainingDatabase:
    """Disjoint directed cycles ``C_p`` with one ``G``-marked node each.

    Cycle ``i`` has nodes ``(i, 0) .. (i, p_i - 1)`` with edges
    ``(i, j) → (i, j+1 mod p_i)``; node ``(i, p_i − 1)`` carries the marker
    fact ``G((i, p_i − 1))`` and node ``(i, 0)`` is the cycle's entity.  By
    default entities at even positions in ``primes`` are positive.

    Every node has in- and out-degree one, so tree-shaped (GHW(1)) queries
    reduce to conjunctions of "the node at net forward distance d from x is
    marked", and d must satisfy ``d ≡ −1 (mod p_i)`` exactly for the
    selected cycles — forcing lcm-scale query sizes for low-dimension
    statistics.
    """
    if len(set(primes)) != len(primes):
        raise SeparabilityError("cycle lengths must be distinct")
    if any(p < 2 for p in primes):
        raise SeparabilityError("cycle lengths must be at least 2")
    if positive_indices is None:
        positive_indices = [i for i in range(len(primes)) if i % 2 == 0]
    positive_set = set(positive_indices)

    builder = DatabaseBuilder()
    positives: List[Element] = []
    negatives: List[Element] = []
    for index, p in enumerate(primes):
        for j in range(p):
            builder.add("E", (index, j), (index, (j + 1) % p))
        builder.add("G", (index, p - 1))
        entity = (index, 0)
        builder.add_entity(entity)
        if index in positive_set:
            positives.append(entity)
        else:
            negatives.append(entity)
    return TrainingDatabase.from_examples(
        builder.build(), positives, negatives
    )


def chain_family(length: int, block: int = 1) -> TrainingDatabase:
    """Nested unary predicates realizing a *linear* family (Prop 8.6).

    Entities ``v_0, ..., v_length`` carry nested unary marks:
    ``P_j(v_i)`` holds iff ``i ≥ j`` (so ``P_1 ⊇ P_2 ⊇ ... ⊇ P_length``).
    Every CQ entity set on this database is either a suffix
    ``{v_j, ..., v_length}`` or everything — a linear family — because an
    atom ``P_j(x)`` is a threshold, conjunctions of thresholds are the
    maximal threshold, and atoms not mentioning ``x`` are constant.

    Labels alternate every ``block`` entities along the chain; by the
    threshold-counting argument each feature changes value once along the
    chain, so any separating statistic needs at least as many features as
    there are label alternations — Theorem 8.7's unbounded-dimension
    property, measured (see
    :func:`repro.fo.dimension_properties.alternation_lower_bound`).
    """
    if length < 1:
        raise SeparabilityError("chain length must be positive")
    if block < 1:
        raise SeparabilityError("block must be positive")
    builder = DatabaseBuilder()
    positives: List[Element] = []
    negatives: List[Element] = []
    for j in range(1, length + 1):
        for i in range(j, length + 1):
            builder.add(f"P{j}", f"v{i}")
    for i in range(length + 1):
        builder.add_entity(f"v{i}")
        if (i // block) % 2 == 0:
            positives.append(f"v{i}")
        else:
            negatives.append(f"v{i}")
    return TrainingDatabase.from_examples(
        builder.build(), positives, negatives
    )


def clique_family(n_cliques: int, block: int = 1) -> TrainingDatabase:
    """Disjoint symmetric cliques K_2, K_3, ..., over a single binary relation.

    Theorem 3.2's minimal setting (one binary relation plus η) also carries
    the unbounded-dimension phenomenon: a connected CQ rooted at ``x`` maps
    into the symmetric clique K_j exactly when its (existential) chromatic
    structure fits, so the realizable entity sets are the nested thresholds
    "x lives in a clique of size ≥ j" — a linear family in the sense of
    Prop 8.6 realized without any auxiliary unary relations.

    Clique ``i`` (``i = 0 .. n_cliques−1``) has ``i + 2`` nodes with all
    symmetric edges (no loops); node ``(i, 0)`` is its entity.  Labels
    alternate every ``block`` cliques.
    """
    if n_cliques < 1:
        raise SeparabilityError("need at least one clique")
    if block < 1:
        raise SeparabilityError("block must be positive")
    builder = DatabaseBuilder()
    positives: List[Element] = []
    negatives: List[Element] = []
    for index in range(n_cliques):
        size = index + 2
        for a in range(size):
            for b in range(size):
                if a != b:
                    builder.add("E", (index, a), (index, b))
        entity = (index, 0)
        builder.add_entity(entity)
        if (index // block) % 2 == 0:
            positives.append(entity)
        else:
            negatives.append(entity)
    return TrainingDatabase.from_examples(
        builder.build(), positives, negatives
    )


def path_to_marker_query(
    length: int, marker: str = "G", edge: str = "E"
) -> CQ:
    """The feature ``q(x) := ∃ȳ E(x,y1) ∧ ... ∧ E(y_{L−1},y_L) ∧ G(y_L)``.

    The canonical GHW(1) feature on the prime-cycle family; selects entities
    whose node at forward distance ``length`` carries the marker.
    """
    if length < 1:
        raise SeparabilityError("path length must be positive")
    x = Variable("x")
    variables = [x] + [Variable(f"y{i}") for i in range(1, length + 1)]
    atoms = [
        Atom(edge, (variables[i], variables[i + 1])) for i in range(length)
    ]
    atoms.append(Atom(marker, (variables[-1],)))
    return CQ.feature(atoms, x)


def minimal_path_feature_length(
    training: TrainingDatabase,
    max_length: Optional[int] = None,
    marker: str = "G",
    edge: str = "E",
) -> Optional[int]:
    """The least L such that the length-L path feature separates perfectly.

    For the prime-cycle family with positives on cycles ``p_{i1}, ...``,
    the answer is the least ``L ≡ −1 (mod p)`` for the positive primes that
    avoids ``−1`` modulo the negative primes — lcm-scale growth, the
    measurable shape of the Theorem 5.7 / 6.7 blowups.  Returns ``None``
    when no L up to ``max_length`` works.
    """
    positives = training.positives
    negatives = training.negatives
    if max_length is None:
        cycles = {
            element[0]: 0 for element in training.database.domain
            if isinstance(element, tuple)
        }
        sizes = [
            sum(
                1
                for element in training.database.domain
                if isinstance(element, tuple) and element[0] == cycle
            )
            for cycle in cycles
        ]
        max_length = lcm(*sizes) + max(sizes) if sizes else 64
    for length in range(1, max_length + 1):
        query = path_to_marker_query(length, marker, edge)
        answers = evaluate_unary(query, training.database)
        if positives <= answers and not answers & negatives:
            return length
    return None
