"""Synthetic workload generators and hard-instance families."""

from repro.workloads.bibliography import (
    bibliography_database,
    bibliography_schema_concept,
)
from repro.workloads.hard_instances import (
    chain_family,
    clique_family,
    example_6_2,
    minimal_path_feature_length,
    path_to_marker_query,
    prime_cycle_family,
)
from repro.workloads.molecules import carbonyl_concept, molecule_database
from repro.workloads.noise import flip_labels, with_noise
from repro.workloads.retail import premium_buyer_concept, retail_database
from repro.workloads.random_db import (
    plant_concept_labeling,
    random_database,
    random_labeling,
    random_training_database,
)

__all__ = [
    "random_database",
    "random_labeling",
    "random_training_database",
    "plant_concept_labeling",
    "bibliography_database",
    "bibliography_schema_concept",
    "molecule_database",
    "carbonyl_concept",
    "retail_database",
    "premium_buyer_concept",
    "example_6_2",
    "prime_cycle_family",
    "chain_family",
    "clique_family",
    "path_to_marker_query",
    "minimal_path_feature_length",
    "flip_labels",
    "with_noise",
]
