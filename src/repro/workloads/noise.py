"""Label-noise injection for the approximate-separability experiments (§7)."""

from __future__ import annotations

import random
from typing import Any, FrozenSet, Tuple

from repro.data.labeling import TrainingDatabase
from repro.exceptions import LabelingError

__all__ = ["flip_labels", "with_noise"]

Element = Any


def flip_labels(
    training: TrainingDatabase, entities: Tuple[Element, ...]
) -> TrainingDatabase:
    """The same database with the given entities' labels negated."""
    return training.relabel(training.labeling.flip(entities))


def with_noise(
    training: TrainingDatabase, fraction: float, seed: int = 0
) -> Tuple[TrainingDatabase, FrozenSet[Element]]:
    """Flip a random ``fraction`` of the labels; returns (noisy, flipped).

    The number of flips is ``round(fraction · |η(D)|)``, drawn uniformly
    without replacement.
    """
    if not 0 <= fraction <= 1:
        raise LabelingError("noise fraction must lie in [0, 1]")
    rng = random.Random(seed)
    entities = sorted(training.entities, key=repr)
    n_flips = round(fraction * len(entities))
    flipped = tuple(rng.sample(entities, n_flips))
    return flip_labels(training, flipped), frozenset(flipped)
