"""A retail relational workload (customers, orders, products, categories).

Mirrors the imbalanced-learning feature-generation setting of Ahmed et al.
[1]: entities are customers in a normalized sales schema, and useful
features require two joins (customer → order → product).  The planted
concept — "ordered some product of the premium category" — is a three-atom
chain, so CQ[3] recovers it while CQ[1] cannot, and the positive class can
be made arbitrarily rare (the imbalance knob).
"""

from __future__ import annotations

import random
from typing import List

from repro.cq.parser import parse_cq
from repro.cq.query import CQ
from repro.data.database import DatabaseBuilder
from repro.data.labeling import TrainingDatabase
from repro.exceptions import DatabaseError
from repro.workloads.random_db import plant_concept_labeling

__all__ = ["premium_buyer_concept", "retail_database"]


def premium_buyer_concept() -> CQ:
    """``q(x) :- eta(x), ordered(x, o), contains(o, p), premium(p)``."""
    return parse_cq(
        "q(x) :- eta(x), ordered(x, o), contains(o, p), premium(p)"
    )


def retail_database(
    n_customers: int = 10,
    n_products: int = 6,
    n_premium: int = 2,
    orders_per_customer: int = 2,
    items_per_order: int = 2,
    positive_fraction: float = 0.4,
    seed: int = 0,
) -> TrainingDatabase:
    """A random normalized sales database labeled by the premium concept.

    Relations: ``ordered(customer, order)``, ``contains(order, product)``,
    ``premium(product)``; customers are the entities.  Approximately
    ``positive_fraction`` of the customers get at least one premium item
    planted into one of their orders (the rest are steered away from
    premium products), so the label imbalance is controllable.
    """
    if not 0 <= positive_fraction <= 1:
        raise DatabaseError("positive_fraction must lie in [0, 1]")
    if n_premium > n_products:
        raise DatabaseError("more premium products than products")
    rng = random.Random(seed)
    products = [f"product{i}" for i in range(n_products)]
    premium = products[:n_premium]
    plain = products[n_premium:]

    builder = DatabaseBuilder()
    for product in premium:
        builder.add("premium", product)

    n_positive = round(positive_fraction * n_customers)
    for c in range(n_customers):
        customer = f"customer{c}"
        builder.add_entity(customer)
        first_order: List[str] = []
        for o in range(orders_per_customer):
            order = f"{customer}_order{o}"
            builder.add("ordered", customer, order)
            if o == 0:
                first_order.append(order)
            pool = plain if plain else products
            for _item in range(items_per_order):
                builder.add("contains", order, rng.choice(pool))
        if c < n_positive and premium and first_order:
            builder.add("contains", first_order[0], rng.choice(premium))

    return plant_concept_labeling(builder.build(), premium_buyer_concept())
