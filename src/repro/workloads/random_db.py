"""Random training databases with planted feature-query concepts.

The generators are deterministic given a seed and produce instances whose
ground truth is known by construction:

- :func:`random_database` draws facts uniformly over a schema;
- :func:`plant_concept_labeling` labels entities by a given feature query
  (so the instance is separable by that query's class, with dimension 1);
- :func:`random_training_database` combines both.
"""

from __future__ import annotations

import random
from typing import Any, Optional, Sequence

from repro.cq.evaluation import evaluate_unary
from repro.cq.query import CQ
from repro.data.database import Database, DatabaseBuilder
from repro.data.labeling import Labeling, TrainingDatabase
from repro.data.schema import EntitySchema
from repro.exceptions import DatabaseError

__all__ = [
    "random_database",
    "plant_concept_labeling",
    "random_training_database",
    "random_labeling",
]

Element = Any


def random_database(
    schema: EntitySchema,
    n_elements: int,
    n_facts_per_relation: int,
    n_entities: Optional[int] = None,
    seed: int = 0,
) -> Database:
    """A database with uniformly random facts over the given entity schema.

    Elements are ``0..n_elements-1``; the first ``n_entities`` of them
    (default: all) are declared entities.
    """
    if n_elements < 1:
        raise DatabaseError("need at least one element")
    rng = random.Random(seed)
    if n_entities is None:
        n_entities = n_elements
    n_entities = min(n_entities, n_elements)
    builder = DatabaseBuilder()
    entity_symbol = schema.entity_symbol
    for element in range(n_entities):
        builder.add(entity_symbol, element)
    elements = list(range(n_elements))
    for symbol in schema.non_entity_symbols:
        seen = set()
        attempts = 0
        while len(seen) < n_facts_per_relation and attempts < 50 * (
            n_facts_per_relation + 1
        ):
            attempts += 1
            row = tuple(rng.choice(elements) for _ in range(symbol.arity))
            if row not in seen:
                seen.add(row)
                builder.add(symbol.name, *row)
    return builder.build(schema=schema)


def plant_concept_labeling(
    database: Database, concept: CQ
) -> TrainingDatabase:
    """Label every entity by whether the concept query selects it."""
    answers = evaluate_unary(concept, database)
    labels = {
        entity: 1 if entity in answers else -1
        for entity in database.entities()
    }
    return TrainingDatabase(database, Labeling(labels))


def random_labeling(database: Database, seed: int = 0) -> TrainingDatabase:
    """Uniformly random ±1 labels (typically *not* separable)."""
    rng = random.Random(seed)
    labels = {
        entity: rng.choice((1, -1))
        for entity in sorted(database.entities(), key=repr)
    }
    return TrainingDatabase(database, Labeling(labels))


def random_training_database(
    schema: EntitySchema,
    concept: CQ,
    n_elements: int,
    n_facts_per_relation: int,
    n_entities: Optional[int] = None,
    seed: int = 0,
) -> TrainingDatabase:
    """A random database labeled by a planted concept query."""
    database = random_database(
        schema, n_elements, n_facts_per_relation, n_entities, seed
    )
    return plant_concept_labeling(database, concept)
