"""A bibliographic relational workload (papers, authors, citations).

This mirrors the paper's motivating scenario of feature generation over a
multi-relational database [1, 24, 27]: entities are papers, and useful
features are join queries such as "written by an award-winning author" or
"cites a paper by the same venue".

The planted concept used for labels is CQ-expressible with two atoms, so
CQ[2]-separability holds by construction and recovery can be verified.
"""

from __future__ import annotations

import random
from typing import List

from repro.cq.parser import parse_cq
from repro.cq.query import CQ
from repro.data.database import Database, DatabaseBuilder
from repro.data.labeling import TrainingDatabase
from repro.workloads.random_db import plant_concept_labeling

__all__ = ["bibliography_schema_concept", "bibliography_database"]


def bibliography_schema_concept() -> CQ:
    """The planted concept: papers with an award-winning author.

    ``q(x) :- eta(x), wrote(a, x), award(a)`` — a two-atom join feature.
    """
    return parse_cq("q(x) :- eta(x), wrote(a, x), award(a)")


def bibliography_database(
    n_papers: int = 12,
    n_authors: int = 6,
    n_awards: int = 2,
    citations_per_paper: int = 2,
    seed: int = 0,
) -> TrainingDatabase:
    """A random bibliography labeled by the award-winning-author concept.

    Relations: ``wrote(author, paper)``, ``cites(paper, paper)``,
    ``award(author)``; every paper is an entity.
    """
    rng = random.Random(seed)
    papers = [f"paper{i}" for i in range(n_papers)]
    authors = [f"author{i}" for i in range(n_authors)]
    awarded = rng.sample(authors, min(n_awards, n_authors))

    builder = DatabaseBuilder()
    for paper in papers:
        builder.add_entity(paper)
        for author in rng.sample(authors, rng.randint(1, 2)):
            builder.add("wrote", author, paper)
        candidates: List[str] = [p for p in papers if p != paper]
        for cited in rng.sample(
            candidates, min(citations_per_paper, len(candidates))
        ):
            builder.add("cites", paper, cited)
    for author in awarded:
        builder.add("award", author)

    return plant_concept_labeling(
        builder.build(), bibliography_schema_concept()
    )
