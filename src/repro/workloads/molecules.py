"""A toy molecular classification workload (propositionalization-style).

Mirrors the randomized-propositionalization motivation of Samorani et al.
[29]: molecules are graphs of typed atoms connected by bonds, the entity is
the molecule identifier, and the classification target is the presence of a
functional group — here, a carbon double-bonded to an oxygen (a carbonyl),
expressible as a three-atom feature query.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.cq.parser import parse_cq
from repro.cq.query import CQ
from repro.data.database import DatabaseBuilder
from repro.data.labeling import TrainingDatabase
from repro.workloads.random_db import plant_concept_labeling

__all__ = ["carbonyl_concept", "molecule_database"]

_ELEMENTS = ("carbon", "oxygen", "nitrogen", "hydrogen")


def carbonyl_concept() -> CQ:
    """``q(x) :- eta(x), contains(x, a), carbon(a), double(a, b), oxygen(b)``.

    Note this is a four-atom feature; it lies in CQ[4] and (being
    tree-shaped) in GHW(1).
    """
    return parse_cq(
        "q(x) :- eta(x), contains(x, a), carbon(a), double(a, b), oxygen(b)"
    )


def molecule_database(
    n_molecules: int = 8,
    atoms_per_molecule: int = 5,
    carbonyl_fraction: float = 0.5,
    seed: int = 0,
) -> TrainingDatabase:
    """Random molecules, a fraction of which contain a planted carbonyl group.

    Relations: ``contains(molecule, atom)``, per-element unary types,
    ``bond(atom, atom)`` and ``double(atom, atom)``; entities are molecules.
    """
    rng = random.Random(seed)
    builder = DatabaseBuilder()
    n_with_group = round(n_molecules * carbonyl_fraction)
    for m in range(n_molecules):
        molecule = f"mol{m}"
        builder.add_entity(molecule)
        atom_ids: List[str] = []
        for a in range(atoms_per_molecule):
            atom = f"mol{m}_atom{a}"
            atom_ids.append(atom)
            builder.add("contains", molecule, atom)
            builder.add(rng.choice(_ELEMENTS), atom)
        # A random spanning chain of single bonds keeps molecules connected.
        for left, right in zip(atom_ids, atom_ids[1:]):
            builder.add("bond", left, right)
        if m < n_with_group:
            carbon = f"mol{m}_c"
            oxygen = f"mol{m}_o"
            builder.add("contains", molecule, carbon)
            builder.add("contains", molecule, oxygen)
            builder.add("carbon", carbon)
            builder.add("oxygen", oxygen)
            builder.add("double", carbon, oxygen)
    return plant_concept_labeling(builder.build(), carbonyl_concept())
