"""Sparse (L1-minimal) separating classifiers.

Section 6 motivates the dimension bound as the count of nonzero classifier
coefficients [11, 26].  The classic convex surrogate is L1 minimization:

    minimize  Σ|w_i|   subject to   w·x_e − w0 ≥ +1   (positives)
                                    w·x_e − w0 ≤ −1   (negatives)

solved as an LP with the usual ``w = u − v`` split.  The optimum is a
separating classifier whose support (nonzero weights) is typically far
smaller than the full pool, giving a polynomial-time upper bound for the
NP-hard minimum dimension that :mod:`repro.core.minimize` can then refine.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.exceptions import SeparabilityError, SolverError
from repro.linsep.classifier import LinearClassifier
from repro.linsep.lp import is_linearly_separable

try:  # pragma: no cover
    from scipy.optimize import linprog as _scipy_linprog
except ImportError:  # pragma: no cover
    _scipy_linprog = None

__all__ = ["find_sparse_separator", "support_size"]

_ZERO_TOLERANCE = 1e-7


def find_sparse_separator(
    vectors: Sequence[Sequence[int]],
    labels: Sequence[int],
) -> Optional[LinearClassifier]:
    """An L1-minimal separating classifier, or ``None`` if not separable.

    The returned classifier is verified to separate the collection exactly
    (tiny weights below the numerical tolerance are snapped to zero first;
    if snapping breaks separation, the unsnapped optimum is returned).
    """
    if len(vectors) != len(labels):
        raise SeparabilityError("vectors and labels differ in length")
    if not vectors:
        return LinearClassifier((), 0.0)
    if all(label == 1 for label in labels):
        return LinearClassifier.constant(len(vectors[0]), 1)
    if all(label == -1 for label in labels):
        return LinearClassifier.constant(len(vectors[0]), -1)
    if not is_linearly_separable(vectors, labels):
        return None
    if _scipy_linprog is None:
        raise SolverError("sparse separation requires SciPy")

    arity = len(vectors[0])
    # Variables: u_1..u_n, v_1..v_n (w = u - v), w0; minimize Σu + Σv.
    n_vars = 2 * arity + 1
    c = [1.0] * (2 * arity) + [0.0]
    a_ub: List[List[float]] = []
    b_ub: List[float] = []
    for vector, label in zip(vectors, labels):
        row = [0.0] * n_vars
        for j, b in enumerate(vector):
            row[j] = -float(b) * label
            row[arity + j] = float(b) * label
        row[2 * arity] = float(label)
        a_ub.append(row)
        b_ub.append(-1.0)
    bounds = [(0.0, None)] * (2 * arity) + [(None, None)]
    result = _scipy_linprog(
        c, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs"
    )
    if not result.success:  # pragma: no cover - separability was checked
        raise SolverError(f"sparse LP failed: {result.message}")

    weights = tuple(
        float(result.x[j] - result.x[arity + j]) for j in range(arity)
    )
    threshold = float(result.x[2 * arity])
    snapped = LinearClassifier(
        tuple(0.0 if abs(w) < _ZERO_TOLERANCE else w for w in weights),
        threshold,
    )
    if snapped.separates(vectors, labels):
        return snapped
    raw = LinearClassifier(weights, threshold)
    if raw.separates(vectors, labels):  # pragma: no cover - rare numerics
        return raw
    raise SolverError(
        "sparse LP optimum failed exact verification"
    )  # pragma: no cover


def support_size(classifier: LinearClassifier) -> int:
    """Number of nonzero weights (the §6 regularization quantity)."""
    return sum(1 for w in classifier.weights if w != 0)
