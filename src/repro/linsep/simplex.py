"""A dependency-free dense two-phase simplex solver.

Solves::

    maximize    c · x
    subject to  A x ≤ b
                lo ≤ x ≤ hi   (finite bounds)

This backs the linear-separability LP when SciPy is unavailable and serves
as a differential-testing target for the SciPy backend.  Bland's rule makes
cycling impossible; the implementation is tableau-based and intended for the
small dense programs produced by this library (tens of variables and
constraints), not for production-scale LP.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.exceptions import SolverError

__all__ = ["SimplexResult", "solve_lp"]

_EPSILON = 1e-9


class SimplexResult:
    """Outcome of :func:`solve_lp`: optimal value and a maximizer."""

    __slots__ = ("value", "solution")

    def __init__(self, value: float, solution: Tuple[float, ...]) -> None:
        self.value = value
        self.solution = solution

    def __repr__(self) -> str:
        return f"SimplexResult(value={self.value!r})"


def _pivot(
    tableau: List[List[float]], basis: List[int], row: int, col: int
) -> None:
    pivot_value = tableau[row][col]
    tableau[row] = [entry / pivot_value for entry in tableau[row]]
    for other in range(len(tableau)):
        if other != row and abs(tableau[other][col]) > 0:
            factor = tableau[other][col]
            tableau[other] = [
                entry - factor * pivot_entry
                for entry, pivot_entry in zip(tableau[other], tableau[row])
            ]
    basis[row] = col


def _run_simplex(
    tableau: List[List[float]],
    basis: List[int],
    allowed_columns: int,
) -> None:
    """Optimize the tableau in place (objective in the last row).

    Bland's anti-cycling rule: enter the lowest-index improving column,
    leave by the lowest-index minimal ratio row.
    """
    rows = len(tableau) - 1
    while True:
        objective = tableau[-1]
        enter = -1
        for col in range(allowed_columns):
            if objective[col] < -_EPSILON:
                enter = col
                break
        if enter < 0:
            return
        leave = -1
        best_ratio = float("inf")
        for row in range(rows):
            coefficient = tableau[row][enter]
            if coefficient > _EPSILON:
                ratio = tableau[row][-1] / coefficient
                if (
                    ratio < best_ratio - _EPSILON
                    or (
                        abs(ratio - best_ratio) <= _EPSILON
                        and (leave < 0 or basis[row] < basis[leave])
                    )
                ):
                    best_ratio = ratio
                    leave = row
        if leave < 0:
            raise SolverError("LP is unbounded")
        _pivot(tableau, basis, leave, enter)


def solve_lp(
    c: Sequence[float],
    a_ub: Sequence[Sequence[float]],
    b_ub: Sequence[float],
    bounds: Sequence[Tuple[float, float]],
) -> SimplexResult:
    """Maximize ``c·x`` subject to ``A x ≤ b`` and finite box bounds.

    Raises :class:`~repro.exceptions.SolverError` if infeasible or unbounded
    (the latter cannot happen with finite bounds, but is guarded anyway).
    """
    n = len(c)
    if any(len(row) != n for row in a_ub):
        raise SolverError("constraint matrix width does not match c")
    if len(a_ub) != len(b_ub):
        raise SolverError("constraint matrix/right-hand side mismatch")
    for low, high in bounds:
        if low > high:
            raise SolverError("invalid bound: lo > hi")

    # Shift to u = x - lo ≥ 0 and add upper-bound rows u_j ≤ hi_j - lo_j.
    lows = [low for low, _ in bounds]
    rows: List[List[float]] = []
    rhs: List[float] = []
    for row, beta in zip(a_ub, b_ub):
        rows.append(list(row))
        rhs.append(beta - sum(r * l for r, l in zip(row, lows)))
    for j, (low, high) in enumerate(bounds):
        bound_row = [0.0] * n
        bound_row[j] = 1.0
        rows.append(bound_row)
        rhs.append(high - low)

    m = len(rows)
    # Normalize rows to nonnegative right-hand sides.
    surplus_rows = []
    for i in range(m):
        if rhs[i] < 0:
            rows[i] = [-entry for entry in rows[i]]
            rhs[i] = -rhs[i]
            surplus_rows.append(i)

    needs_artificial = set(surplus_rows)
    slack_count = m
    artificial_count = len(needs_artificial)
    total = n + slack_count + artificial_count

    tableau: List[List[float]] = []
    basis: List[int] = []
    artificial_index = n + slack_count
    artificial_of = {}
    for i in range(m):
        row = rows[i] + [0.0] * (slack_count + artificial_count) + [rhs[i]]
        slack_sign = -1.0 if i in needs_artificial else 1.0
        row[n + i] = slack_sign
        if i in needs_artificial:
            row[artificial_index] = 1.0
            artificial_of[i] = artificial_index
            basis.append(artificial_index)
            artificial_index += 1
        else:
            basis.append(n + i)
        tableau.append(row)

    if needs_artificial:
        # Phase 1: minimize the sum of artificial variables.  The objective
        # row holds reduced costs: cost 1 on each artificial column, then
        # reduced by the rows whose basic variable is artificial.
        phase1 = [0.0] * (total + 1)
        for col in range(n + slack_count, total):
            phase1[col] = 1.0
        for i in needs_artificial:
            for col in range(total + 1):
                phase1[col] -= tableau[i][col]
        tableau.append(phase1)
        _run_simplex(tableau, basis, total)
        if tableau[-1][-1] < -1e-7:
            raise SolverError("LP is infeasible")
        tableau.pop()
        # Drive any artificial variable still in the basis out of it.
        for row_index, basic in enumerate(basis):
            if basic >= n + slack_count:
                for col in range(n + slack_count):
                    if abs(tableau[row_index][col]) > _EPSILON:
                        _pivot(tableau, basis, row_index, col)
                        break

    # Phase 2 objective: minimize -c·u (tableau convention), reduced by basis.
    objective = [-float(ci) for ci in c] + [0.0] * (
        slack_count + artificial_count
    ) + [0.0]
    for row_index, basic in enumerate(basis):
        coefficient = objective[basic]
        if abs(coefficient) > _EPSILON:
            objective = [
                entry - coefficient * row_entry
                for entry, row_entry in zip(objective, tableau[row_index])
            ]
    tableau.append(objective)
    _run_simplex(tableau, basis, n + slack_count)

    values = [0.0] * total
    for row_index, basic in enumerate(basis):
        values[basic] = tableau[row_index][-1]
    solution = tuple(values[j] + lows[j] for j in range(n))
    objective_value = sum(ci * xi for ci, xi in zip(c, solution))
    return SimplexResult(objective_value, solution)
