"""Integer perceptron training for exact separating classifiers.

The LP backend decides separability; this module then produces an *exactly
verifiable* separator: because the training vectors are ±1-integral, the
classic perceptron update keeps all weights integral, so the final
classifier can be checked with exact integer arithmetic (no floating-point
tolerance games).  On separable data the perceptron converges by Novikoff's
theorem; ``max_updates`` guards the non-separable case (callers should run
the LP first).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.linsep.classifier import LinearClassifier

__all__ = ["train_perceptron"]


def train_perceptron(
    vectors: Sequence[Sequence[int]],
    labels: Sequence[int],
    max_updates: int = 1_000_000,
) -> Optional[LinearClassifier]:
    """An integer-weight classifier separating the examples, or ``None``.

    Returns a classifier with ``Λ(v) = label`` for every example when the
    data is separable and the update budget suffices.  The bias is folded in
    as an extra always-one coordinate during training; the final threshold
    is chosen midway so positives sit on/above it and negatives strictly
    below.
    """
    if not vectors:
        return LinearClassifier((), 0.0)
    arity = len(vectors[0])
    augmented = [tuple(vector) + (1,) for vector in vectors]
    weights = [0] * (arity + 1)

    updates = 0
    while updates <= max_updates:
        mistakes = 0
        for vector, label in zip(augmented, labels):
            score = sum(w * b for w, b in zip(weights, vector))
            # Train with a strict margin requirement on both sides so the
            # final ≥-threshold rule has slack.
            if label * score <= 0:
                for index, b in enumerate(vector):
                    weights[index] += label * b
                mistakes += 1
                updates += 1
                if updates > max_updates:
                    return None
        if mistakes == 0:
            break
    else:  # pragma: no cover - loop exits via break or return
        return None

    feature_weights = tuple(float(w) for w in weights[:arity])
    bias = weights[arity]
    # Λ(v) = 1 iff Σ w·b ≥ w0; training guarantees label·(w·v + bias) > 0,
    # i.e. positives have w·v > -bias and negatives w·v < -bias.
    threshold = float(-bias)
    classifier = LinearClassifier(feature_weights, threshold)
    if classifier.separates(vectors, labels):
        return classifier
    return None
