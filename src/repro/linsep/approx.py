"""Minimum-error linear separation (paper, Section 7).

Approximate separability asks for a classifier misclassifying at most
``ε·n`` examples.  The underlying optimization — minimize the number of
misclassified ±1 vectors — is NP-complete (Höffgen, Simon & Van Horn [17]),
so this module provides:

- an *exact* branch-and-bound solver over identical-vector groups
  (:func:`min_errors_exact`), suitable for the small instances of the test
  suite and benchmarks, with admissible conflict lower bounds and
  separability-monotonicity pruning; and
- a *greedy* LP-guided heuristic (:func:`min_errors_greedy`) that repeatedly
  drops the example with the largest soft-margin violation, giving an upper
  bound in polynomial time.

Both report an :class:`ApproxSeparation` carrying the achieved error count,
the misclassified example indexes, and an exact classifier realizing it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.exceptions import SeparabilityError, SolverError
from repro.linsep.classifier import LinearClassifier
from repro.linsep.lp import find_separator, is_linearly_separable

try:  # pragma: no cover
    from scipy.optimize import linprog as _scipy_linprog
except ImportError:  # pragma: no cover
    _scipy_linprog = None

__all__ = [
    "ApproxSeparation",
    "min_errors_exact",
    "min_errors_greedy",
    "separable_with_budget",
]


@dataclass(frozen=True)
class ApproxSeparation:
    """A classifier together with the examples it misclassifies."""

    errors: int
    misclassified: FrozenSet[int]
    classifier: LinearClassifier

    def error_rate(self, total: int) -> float:
        return self.errors / total if total else 0.0


def _validate(
    vectors: Sequence[Sequence[int]], labels: Sequence[int]
) -> None:
    if len(vectors) != len(labels):
        raise SeparabilityError("vectors and labels differ in length")
    if vectors:
        arity = len(vectors[0])
        if any(len(vector) != arity for vector in vectors):
            raise SeparabilityError("vectors must all have the same length")
    if any(label not in (1, -1) for label in labels):
        raise SeparabilityError("labels must be +1 or -1")


def _group_examples(
    vectors: Sequence[Sequence[int]], labels: Sequence[int]
) -> Dict[Tuple[int, ...], Dict[int, List[int]]]:
    """Group example indexes by identical vector, split by label."""
    groups: Dict[Tuple[int, ...], Dict[int, List[int]]] = {}
    for index, (vector, label) in enumerate(zip(vectors, labels)):
        groups.setdefault(tuple(vector), {1: [], -1: []})[label].append(index)
    return groups


def min_errors_exact(
    vectors: Sequence[Sequence[int]],
    labels: Sequence[int],
    max_groups: int = 22,
) -> ApproxSeparation:
    """The exact minimum number of misclassified examples, with witness.

    Branch and bound over per-group predictions: a linear classifier is
    constant on identical vectors, so the search assigns each distinct
    vector a predicted label, pruning branches whose partial assignment is
    already non-separable (adding groups only adds constraints) or whose
    cost lower bound meets the incumbent.

    Raises :class:`~repro.exceptions.SolverError` when there are more than
    ``max_groups`` distinct vectors (the search is exponential by nature —
    the problem is NP-complete).
    """
    _validate(vectors, labels)
    if not vectors:
        return ApproxSeparation(0, frozenset(), LinearClassifier((), 0.0))

    groups = _group_examples(vectors, labels)
    if len(groups) > max_groups:
        raise SolverError(
            f"exact search over {len(groups)} distinct vectors exceeds "
            f"max_groups={max_groups}; use min_errors_greedy"
        )
    # Deterministic order; largest label-imbalance first so good solutions
    # are found early.
    ordered = sorted(
        groups.items(),
        key=lambda item: -abs(len(item[1][1]) - len(item[1][-1])),
    )
    group_vectors = [vector for vector, _ in ordered]
    cost_of = [
        {1: len(members[-1]), -1: len(members[1])}
        for _, members in ordered
    ]
    remaining_floor = [0] * (len(ordered) + 1)
    for index in range(len(ordered) - 1, -1, -1):
        remaining_floor[index] = remaining_floor[index + 1] + min(
            cost_of[index][1], cost_of[index][-1]
        )

    # Incumbent from the greedy heuristic (always feasible).
    greedy = min_errors_greedy(vectors, labels)
    best_cost = greedy.errors
    best_assignment: Optional[List[int]] = None

    assignment: List[int] = []

    def search(index: int, cost: int) -> None:
        nonlocal best_cost, best_assignment
        if cost + remaining_floor[index] >= best_cost:
            return
        if index == len(ordered):
            best_cost = cost
            best_assignment = list(assignment)
            return
        options = sorted(
            (1, -1), key=lambda side: cost_of[index][side]
        )
        for side in options:
            assignment.append(side)
            prefix_vectors = group_vectors[: index + 1]
            if is_linearly_separable(prefix_vectors, assignment):
                search(index + 1, cost + cost_of[index][side])
            assignment.pop()

    search(0, 0)

    if best_assignment is None:
        return greedy

    classifier = find_separator(group_vectors, best_assignment)
    if classifier is None:  # pragma: no cover - assignment was LP-verified
        raise SolverError("verified assignment lost separability")
    misclassified = []
    for (vector, members), side in zip(ordered, best_assignment):
        misclassified.extend(members[-side])
    return ApproxSeparation(
        best_cost, frozenset(misclassified), classifier
    )


def _soft_margin_violations(
    vectors: Sequence[Sequence[int]], labels: Sequence[int]
) -> List[float]:
    """Per-example slack of the minimum-total-slack soft-margin LP."""
    if _scipy_linprog is None:
        # Fallback: uniform slacks; the greedy then drops examples from the
        # majority-conflict side deterministically.
        return [1.0] * len(vectors)
    arity = len(vectors[0])
    n = len(vectors)
    # Variables: w1..wn, w0, xi_1..xi_n; minimize sum xi.
    n_vars = arity + 1 + n
    a_ub: List[List[float]] = []
    b_ub: List[float] = []
    for i, (vector, label) in enumerate(zip(vectors, labels)):
        row = [0.0] * n_vars
        if label == 1:
            # w·b - w0 + xi ≥ 1   →   -(w·b) + w0 - xi ≤ -1
            for j, b in enumerate(vector):
                row[j] = -float(b)
            row[arity] = 1.0
        else:
            # w·b - w0 - xi ≤ -1
            for j, b in enumerate(vector):
                row[j] = float(b)
            row[arity] = -1.0
        row[arity + 1 + i] = -1.0
        a_ub.append(row)
        b_ub.append(-1.0)
    bounds = [(-n - 1.0, n + 1.0)] * (arity + 1) + [(0.0, None)] * n
    c = [0.0] * (arity + 1) + [1.0] * n
    result = _scipy_linprog(
        c, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs"
    )
    if not result.success:  # pragma: no cover - LP is always feasible
        raise SolverError(f"soft-margin LP failed: {result.message}")
    return [float(result.x[arity + 1 + i]) for i in range(n)]


def min_errors_greedy(
    vectors: Sequence[Sequence[int]],
    labels: Sequence[int],
) -> ApproxSeparation:
    """A feasible (not necessarily optimal) small-error separation.

    Repeatedly solves the soft-margin LP and discards the example with the
    largest slack until the remainder is exactly separable; discarded
    examples are the misclassified set.  Polynomial time; an upper bound for
    :func:`min_errors_exact`.
    """
    _validate(vectors, labels)
    active = list(range(len(vectors)))
    dropped: List[int] = []
    while True:
        active_vectors = [vectors[i] for i in active]
        active_labels = [labels[i] for i in active]
        classifier = find_separator(active_vectors, active_labels)
        if classifier is not None:
            # Dropped examples may or may not be misclassified by the final
            # classifier; report its true error set.
            misclassified = frozenset(
                i
                for i in range(len(vectors))
                if classifier.predict(vectors[i]) != labels[i]
            )
            return ApproxSeparation(
                len(misclassified), misclassified, classifier
            )
        violations = _soft_margin_violations(active_vectors, active_labels)
        worst = max(range(len(active)), key=lambda i: violations[i])
        dropped.append(active.pop(worst))


def separable_with_budget(
    vectors: Sequence[Sequence[int]],
    labels: Sequence[int],
    budget: int,
    method: str = "exact",
) -> Optional[ApproxSeparation]:
    """A separation with at most ``budget`` errors, or ``None``.

    With ``method="greedy"`` a ``None`` answer is *not* a proof that no such
    separation exists; with ``method="exact"`` it is.
    """
    if method == "exact":
        result = min_errors_exact(vectors, labels)
    elif method == "greedy":
        result = min_errors_greedy(vectors, labels)
    else:
        raise SeparabilityError(f"unknown method {method!r}")
    return result if result.errors <= budget else None
