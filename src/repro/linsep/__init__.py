"""Linear classifiers and exact/approximate linear separability."""

from repro.linsep.approx import (
    ApproxSeparation,
    min_errors_exact,
    min_errors_greedy,
    separable_with_budget,
)
from repro.linsep.classifier import LinearClassifier
from repro.linsep.lp import (
    find_separator,
    is_linearly_separable,
    separation_margin,
)
from repro.linsep.perceptron import train_perceptron
from repro.linsep.sparse import find_sparse_separator, support_size
from repro.linsep.simplex import SimplexResult, solve_lp

__all__ = [
    "LinearClassifier",
    "separation_margin",
    "is_linearly_separable",
    "find_separator",
    "train_perceptron",
    "find_sparse_separator",
    "support_size",
    "SimplexResult",
    "solve_lp",
    "ApproxSeparation",
    "min_errors_exact",
    "min_errors_greedy",
    "separable_with_budget",
]
