"""Linear classifiers over ±1 feature vectors (paper, Section 2).

A tuple ``w̄ = (w0, w1, ..., wn)`` defines the classifier::

    Λ_w̄(b1, ..., bn) = 1   if  Σ wi·bi ≥ w0
                        -1  otherwise

Note the asymmetry: the positive side includes the boundary, exactly as in
the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.exceptions import SeparabilityError

__all__ = ["LinearClassifier"]


@dataclass(frozen=True)
class LinearClassifier:
    """The paper's ``Λ_w̄`` with weights ``w = (w1..wn)`` and threshold ``w0``."""

    weights: Tuple[float, ...]
    threshold: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "weights", tuple(self.weights))

    @property
    def arity(self) -> int:
        return len(self.weights)

    def score(self, vector: Sequence[int]) -> float:
        """``Σ wi·bi`` for the given feature vector."""
        if len(vector) != len(self.weights):
            raise SeparabilityError(
                f"classifier arity {len(self.weights)} does not match "
                f"vector length {len(vector)}"
            )
        return sum(w * b for w, b in zip(self.weights, vector))

    def predict(self, vector: Sequence[int]) -> int:
        """``Λ_w̄(vector)`` ∈ {1, -1}."""
        return 1 if self.score(vector) >= self.threshold else -1

    def margin(self, vector: Sequence[int], label: int) -> float:
        """Positive iff the vector is classified as ``label``.

        For positives the margin is ``score - threshold`` (≥ 0 is correct);
        for negatives it is ``threshold - score`` (> 0 is correct); the
        boundary itself is reported as 0 either way.
        """
        delta = self.score(vector) - self.threshold
        return delta if label == 1 else -delta

    def errors(
        self,
        vectors: Sequence[Sequence[int]],
        labels: Sequence[int],
    ) -> int:
        """Number of misclassified examples."""
        if len(vectors) != len(labels):
            raise SeparabilityError("vectors and labels differ in length")
        return sum(
            1
            for vector, label in zip(vectors, labels)
            if self.predict(vector) != label
        )

    def separates(
        self,
        vectors: Sequence[Sequence[int]],
        labels: Sequence[int],
    ) -> bool:
        """Whether every example is classified according to its label."""
        return self.errors(vectors, labels) == 0

    @classmethod
    def constant(cls, arity: int, label: int) -> "LinearClassifier":
        """The classifier answering ``label`` on every input."""
        if label == 1:
            return cls((0.0,) * arity, 0.0)
        if label == -1:
            return cls((0.0,) * arity, 1.0)
        raise SeparabilityError(f"label must be +1 or -1, got {label!r}")
