"""Exact linear separability via linear programming (paper, Prop 4.1).

Deciding whether a training collection ``(b̄_i, y_i)`` is linearly separable
reduces to LP feasibility [19, 21]: maximize a margin δ subject to::

    w · b̄_i − w0 ≥ 0     for positives (the rule is ≥, boundary included)
    w · b̄_i − w0 ≤ −δ    for negatives
    −1 ≤ w_j, w0 ≤ 1,  0 ≤ δ ≤ 1

The collection is separable iff the optimum δ* is strictly positive (any
separator rescales into the box with δ > 0; δ = 0 is always feasible).

For a *certified* separator, :func:`find_separator` re-derives integral
weights with the perceptron (exact integer arithmetic) after the LP decides
separability; the LP solution seeds nothing — Novikoff's bound applies
because separability was just established.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.exceptions import SeparabilityError, SolverError
from repro.linsep.classifier import LinearClassifier
from repro.linsep.perceptron import train_perceptron
from repro.linsep.simplex import solve_lp

try:  # pragma: no cover - exercised through both branches in CI images
    from scipy.optimize import linprog as _scipy_linprog
except ImportError:  # pragma: no cover
    _scipy_linprog = None

__all__ = [
    "separation_margin",
    "is_linearly_separable",
    "find_separator",
]

_MARGIN_TOLERANCE = 1e-7


def _margin_lp(
    vectors: Sequence[Sequence[int]],
    labels: Sequence[int],
    backend: str,
) -> Tuple[float, Tuple[float, ...]]:
    """Solve the margin LP; returns (δ*, (w1..wn, w0))."""
    arity = len(vectors[0])
    # Variables: w1..wn, w0, delta.
    n_vars = arity + 2
    a_ub: List[List[float]] = []
    b_ub: List[float] = []
    for vector, label in zip(vectors, labels):
        if label == 1:
            # -(w·b) + w0 ≤ 0
            row = [-float(b) for b in vector] + [1.0, 0.0]
        else:
            # w·b - w0 + δ ≤ 0
            row = [float(b) for b in vector] + [-1.0, 1.0]
        a_ub.append(row)
        b_ub.append(0.0)
    bounds = [(-1.0, 1.0)] * (arity + 1) + [(0.0, 1.0)]
    c_max = [0.0] * (arity + 1) + [1.0]

    if backend == "scipy":
        if _scipy_linprog is None:
            raise SolverError("SciPy backend requested but SciPy is missing")
        result = _scipy_linprog(
            [-ci for ci in c_max],
            A_ub=a_ub or None,
            b_ub=b_ub or None,
            bounds=bounds,
            method="highs",
        )
        if not result.success:
            raise SolverError(f"LP solver failed: {result.message}")
        solution = tuple(float(x) for x in result.x)
        return float(-result.fun), solution[: arity + 1]
    if backend == "simplex":
        result = solve_lp(c_max, a_ub, b_ub, bounds)
        return float(result.value), tuple(result.solution[: arity + 1])
    raise SolverError(f"unknown LP backend {backend!r}")


def separation_margin(
    vectors: Sequence[Sequence[int]],
    labels: Sequence[int],
    backend: str = "auto",
) -> float:
    """The optimal margin δ* of the separability LP (0 iff not separable)."""
    if len(vectors) != len(labels):
        raise SeparabilityError("vectors and labels differ in length")
    if not vectors:
        return 1.0
    arity = len(vectors[0])
    if any(len(vector) != arity for vector in vectors):
        raise SeparabilityError("vectors must all have the same length")
    if any(label not in (1, -1) for label in labels):
        raise SeparabilityError("labels must be +1 or -1")
    if all(label == 1 for label in labels) or all(
        label == -1 for label in labels
    ):
        return 1.0
    if backend == "auto":
        backend = "scipy" if _scipy_linprog is not None else "simplex"
    delta, _ = _margin_lp(vectors, labels, backend)
    return delta


def is_linearly_separable(
    vectors: Sequence[Sequence[int]],
    labels: Sequence[int],
    backend: str = "auto",
) -> bool:
    """Whether some ``Λ_w̄`` classifies every example correctly."""
    return separation_margin(vectors, labels, backend) > _MARGIN_TOLERANCE


def find_separator(
    vectors: Sequence[Sequence[int]],
    labels: Sequence[int],
    backend: str = "auto",
) -> Optional[LinearClassifier]:
    """An exact separating classifier, or ``None`` if none exists.

    The returned classifier has integral weights and verifies exactly
    (``classifier.separates(vectors, labels)`` is re-checked before return).
    """
    if not vectors:
        return LinearClassifier((), 0.0)
    if all(label == 1 for label in labels):
        return LinearClassifier.constant(len(vectors[0]), 1)
    if all(label == -1 for label in labels):
        return LinearClassifier.constant(len(vectors[0]), -1)
    if not is_linearly_separable(vectors, labels, backend):
        return None
    classifier = train_perceptron(vectors, labels)
    if classifier is None:  # pragma: no cover - LP certified separability
        raise SolverError(
            "perceptron failed to converge on LP-certified separable data"
        )
    return classifier
