"""Enumeration of the classes ``CQ[m]`` and ``CQ[m, p]`` (paper, Section 4).

``CQ[m]`` is the class of feature queries with at most ``m`` atoms, not
counting the mandatory entity atom ``η(x)``; ``CQ[m, p]`` further restricts
each variable to at most ``p`` occurrences across those atoms.  For a fixed
schema the class is finite up to renaming of existential variables, which is
what makes Prop 4.1's all-features statistic computable.

Enumeration proceeds atom by atom with canonical introduction of new
variables and deduplicates through :meth:`repro.cq.query.CQ.canonical_form`
(isomorphism level) or cores + canonical forms (equivalence level).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.cq.core import core_of
from repro.cq.query import CQ
from repro.cq.terms import Atom, Variable
from repro.data.schema import ENTITY_SYMBOL, Schema
from repro.exceptions import QueryError

__all__ = [
    "enumerate_feature_queries",
    "enumerate_unary_queries",
    "count_feature_queries",
]


def _argument_tuples(
    arity: int,
    available: Sequence[Variable],
    next_fresh_index: int,
) -> Iterator[Tuple[Variable, ...]]:
    """All argument tuples over available plus canonically-named fresh variables.

    Fresh variables are introduced in index order at their first occurrence
    inside the tuple, which removes renaming duplicates within a single atom.
    """

    known = set(available)

    def extend(
        prefix: List[Variable], fresh_used: int
    ) -> Iterator[Tuple[Variable, ...]]:
        if len(prefix) == arity:
            yield tuple(prefix)
            return
        # Fresh variables already introduced earlier in this atom are
        # reusable in later positions.
        introduced = []
        seen_in_prefix = set()
        for variable in prefix:
            if variable not in known and variable not in seen_in_prefix:
                introduced.append(variable)
                seen_in_prefix.add(variable)
        for variable in list(available) + introduced:
            prefix.append(variable)
            yield from extend(prefix, fresh_used)
            prefix.pop()
        fresh = Variable(f"v{next_fresh_index + fresh_used}")
        prefix.append(fresh)
        yield from extend(prefix, fresh_used + 1)
        prefix.pop()

    yield from extend([], 0)


def _max_occurrences(atoms: Sequence[Atom]) -> int:
    counts: Dict[Variable, int] = {}
    for atom in atoms:
        for variable in atom.arguments:
            counts[variable] = counts.get(variable, 0) + 1
    return max(counts.values(), default=0)


def enumerate_feature_queries(
    schema: Schema,
    max_atoms: int,
    max_occurrences: Optional[int] = None,
    free_variable: Variable = Variable("x"),
    entity_symbol: str = ENTITY_SYMBOL,
    dedupe: str = "equivalence",
) -> List[CQ]:
    """All feature queries of ``CQ[m]`` (or ``CQ[m, p]``) over a schema.

    Parameters
    ----------
    schema:
        The schema whose relation symbols may appear in atom bodies.  The
        entity symbol is usable in the body like any other unary relation.
    max_atoms:
        The bound ``m`` on body atoms (the entity atom ``η(x)`` is free).
    max_occurrences:
        Optional bound ``p`` of ``CQ[m, p]`` on per-variable occurrences
        across the body atoms (the implicit ``η(x)`` does not count).
    dedupe:
        ``"isomorphism"`` deduplicates up to renaming of existential
        variables; ``"equivalence"`` (default) additionally reduces every
        query to its core and deduplicates semantically equivalent queries.

    Returns
    -------
    list[CQ]
        Feature queries in a deterministic order, each containing ``η(x)``.
        The trivial query ``q(x) :- η(x)`` is always first.
    """
    if max_atoms < 0:
        raise QueryError("max_atoms must be nonnegative")
    if max_occurrences is not None and max_occurrences < 1:
        raise QueryError("max_occurrences must be positive when given")
    if dedupe not in ("isomorphism", "equivalence"):
        raise QueryError(f"unknown dedupe mode {dedupe!r}")

    relations = sorted(schema, key=lambda symbol: (symbol.name, symbol.arity))
    results: List[CQ] = []
    seen: Set[Tuple] = set()

    def register(atoms: Tuple[Atom, ...]) -> None:
        query = CQ.feature(atoms, free_variable, entity_symbol)
        if dedupe == "equivalence":
            query = core_of(query)
        form = query.canonical_form()
        if form in seen:
            return
        seen.add(form)
        results.append(query.standardized())

    def grow(atoms: List[Atom], fresh_count: int) -> None:
        register(tuple(atoms))
        if len(atoms) == max_atoms:
            return
        used_variables: List[Variable] = [free_variable]
        for atom in atoms:
            for variable in atom.arguments:
                if variable not in used_variables:
                    used_variables.append(variable)
        for symbol in relations:
            for arguments in _argument_tuples(
                symbol.arity, used_variables, fresh_count
            ):
                candidate = Atom(symbol.name, arguments)
                if candidate in atoms:
                    continue
                atoms.append(candidate)
                if (
                    max_occurrences is None
                    or _max_occurrences(atoms) <= max_occurrences
                ):
                    new_fresh = sum(
                        1
                        for variable in set(arguments)
                        if variable not in used_variables
                    )
                    grow(atoms, fresh_count + new_fresh)
                atoms.pop()

    grow([], 0)
    return results


def enumerate_unary_queries(
    schema: Schema,
    max_atoms: int,
    max_occurrences: Optional[int] = None,
    free_variable: Variable = Variable("x"),
    dedupe: str = "equivalence",
) -> List[CQ]:
    """All unary CQs ``q(x)`` with at most ``max_atoms`` atoms over a schema.

    Unlike :func:`enumerate_feature_queries`, no entity atom is assumed: the
    free variable simply must occur in at least one atom.  This is the query
    pool of the generic Query-By-Example problem (Section 6.1), where the
    schema need not be an entity schema.
    """
    if max_atoms < 1:
        raise QueryError("enumerate_unary_queries requires max_atoms >= 1")
    if max_occurrences is not None and max_occurrences < 1:
        raise QueryError("max_occurrences must be positive when given")
    if dedupe not in ("isomorphism", "equivalence"):
        raise QueryError(f"unknown dedupe mode {dedupe!r}")

    relations = sorted(schema, key=lambda symbol: (symbol.name, symbol.arity))
    results: List[CQ] = []
    seen: Set[Tuple] = set()

    def register(atoms: Tuple[Atom, ...]) -> None:
        if not any(free_variable in atom.arguments for atom in atoms):
            return
        query = CQ(atoms, (free_variable,))
        if dedupe == "equivalence":
            query = core_of(query)
        form = query.canonical_form()
        if form in seen:
            return
        seen.add(form)
        results.append(query.standardized())

    def grow(atoms: List[Atom], fresh_count: int) -> None:
        if atoms:
            register(tuple(atoms))
        if len(atoms) == max_atoms:
            return
        used_variables: List[Variable] = [free_variable]
        for atom in atoms:
            for variable in atom.arguments:
                if variable not in used_variables:
                    used_variables.append(variable)
        for symbol in relations:
            for arguments in _argument_tuples(
                symbol.arity, used_variables, fresh_count
            ):
                candidate = Atom(symbol.name, arguments)
                if candidate in atoms:
                    continue
                atoms.append(candidate)
                if (
                    max_occurrences is None
                    or _max_occurrences(atoms) <= max_occurrences
                ):
                    new_fresh = sum(
                        1
                        for variable in set(arguments)
                        if variable not in used_variables
                    )
                    grow(atoms, fresh_count + new_fresh)
                atoms.pop()

    grow([], 0)
    return results


def count_feature_queries(
    schema: Schema,
    max_atoms: int,
    max_occurrences: Optional[int] = None,
    dedupe: str = "equivalence",
) -> int:
    """``|CQ[m]|`` (resp. ``|CQ[m, p]|``) over the schema, up to ``dedupe``."""
    return len(
        enumerate_feature_queries(
            schema,
            max_atoms,
            max_occurrences=max_occurrences,
            dedupe=dedupe,
        )
    )
