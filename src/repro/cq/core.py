"""Cores of conjunctive queries.

The *core* of a CQ is its unique (up to isomorphism) smallest equivalent
subquery; it is the homomorphism-minimal retract of the canonical database
that fixes the free variables.  Cores let the enumeration of Section 4
deduplicate feature queries up to semantic equivalence, not just isomorphism.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cq.homomorphism import find_homomorphism
from repro.cq.query import CQ
from repro.cq.terms import Atom, Variable
from repro.data.database import Database

__all__ = ["core_of"]


def _proper_retraction(
    canonical: Database, fixed: Dict[Variable, Variable]
) -> Optional[Dict[Variable, Variable]]:
    """An endomorphism fixing the free variables whose image avoids some element.

    Returns ``None`` if the structure is already a core relative to the fixed
    variables.
    """
    for dropped in sorted(canonical.domain):
        if dropped in fixed:
            continue
        target = canonical.restrict_to_elements(canonical.domain - {dropped})
        mapping = find_homomorphism(canonical, target, fixed)
        if mapping is not None:
            return mapping
    return None


def core_of(query: CQ) -> CQ:
    """The core of ``query`` (an equivalent CQ with a minimal set of atoms).

    Free variables are preserved verbatim; the result is equivalent to the
    input on every database.
    """
    fixed = {variable: variable for variable in query.free_variables}
    canonical = query.canonical_database
    while True:
        retraction = _proper_retraction(canonical, fixed)
        if retraction is None:
            break
        canonical = Database(
            fact.__class__(
                fact.relation,
                tuple(retraction[a] for a in fact.arguments),
            )
            for fact in canonical.facts
        )
    atoms = tuple(
        Atom(fact.relation, fact.arguments) for fact in canonical.facts
    )
    return CQ(atoms, query.free_variables)
