"""Indexed, memoized CQ evaluation engine (the library's hot path).

Every paper algorithm — separability checks (Prop 4.1/4.3), statistic
materialization (Section 3), QBE (Section 6), and GHW(k) classification
(Algorithm 1) — bottoms out in pointed homomorphism checks.  The
:class:`EvaluationEngine` makes repeated checks cheap in three ways:

- **Indexing.**  Checks read the target database's lazily-built
  :class:`~repro.data.database.DatabaseIndex` (per-(relation, position)
  occurrence sets, facts-by-relation maps), computed once per
  :class:`~repro.data.database.Database` instance and reused across all
  searches against it.
- **Memoization.**  Pointed hom-check results are cached in a bounded LRU
  keyed by ``(canonical database, target database, frozen fixed
  assignment)``.  Keys hold the actual :class:`Database` objects, whose
  value-based ``__eq__``/``__hash__`` make aliasing impossible: two
  databases share an entry iff they have exactly the same facts (in which
  case every check result coincides), and a hash collision between distinct
  databases is resolved by equality like in any dict.  Databases are
  immutable, so entries never go stale; derived databases are new objects
  with new keys.  Whole query answers (``q(D)``) and cover-game results get
  their own LRUs with the same key discipline.
- **Batching.**  :meth:`evaluate_statistic` and :meth:`indicator_matrix`
  evaluate each feature query once per database and read vectors off the
  answer sets, instead of re-deriving candidates per ``selects`` call.
- **Compiled plans.**  Each query is compiled once into a
  :class:`~repro.cq.plan.QueryPlan` (cached in its own LRU keyed by the
  query alone) whose precompiled homomorphism program replaces the
  per-check query-side analysis — fact ordering, occurrence signatures,
  zip schedule — and whose single-pass Yannakakis plan backs
  :meth:`EvaluationEngine.evaluate_ghw`.  Plans are database-independent,
  so the plan cache survives :meth:`EvaluationEngine.apply_delta`
  untouched.

Instrumentation counters (hom checks attempted, backtrack nodes expanded,
cache hits/misses, cover games played) are threaded through to
``benchmarks/harness.py`` so benches report work done, not just wall-clock.

The module-level functions in :mod:`repro.cq.evaluation` are thin wrappers
over a process-wide default engine; the frozen uncached reference lives in
:mod:`repro.cq.naive` for differential testing.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.cq.homomorphism import SearchCounters, has_homomorphism

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.cq.plan import HomomorphismProgram, PlanCounters, QueryPlan
    from repro.runtime.executor import Executor
from repro.cq.query import CQ
from repro.data import bitset as bitset_backend
from repro.data.database import Database
from repro.exceptions import (
    DatabaseError,
    DecompositionError,
    QueryError,
    ReproError,
)

__all__ = [
    "CacheInfo",
    "EngineCounters",
    "EvaluationEngine",
    "default_engine",
    "set_default_engine",
]

Element = Any

DEFAULT_CACHE_SIZE = 4096

#: Engine backends: the pure-Python reference hot path, and the opt-in
#: numpy-bitset batch evaluator (:mod:`repro.cq.vectorized`).
BACKENDS = ("python", "numpy")


class CacheInfo(NamedTuple):
    """``functools.lru_cache``-style cache statistics.

    ``retained``/``invalidated`` count delta reconciliations (see
    :meth:`EvaluationEngine.apply_delta`): entries migrated to the new
    database version versus entries evicted because their query mentioned
    a touched relation.  Both stay 0 for engines never fed a delta.
    """

    hits: int
    misses: int
    maxsize: int
    currsize: int
    retained: int = 0
    invalidated: int = 0


class EngineCounters:
    """Work counters for one :class:`EvaluationEngine`.

    ``search`` tallies the underlying backtracking searches (checks started
    and nodes expanded); ``cover_games`` counts cover-game decisions actually
    played (cache misses of the game cache); ``vectorized_sweeps`` counts
    evaluations answered by the numpy-bitset backend (always 0 on
    ``backend="python"`` engines); ``plan_compilations`` counts
    :meth:`QueryPlan.compile` runs actually performed (a plan served from
    the warm-state store or the plan LRU does not count — the warm-start
    benchmark's headline figure).
    """

    __slots__ = ("search", "cover_games", "vectorized_sweeps",
                 "plan_compilations")

    def __init__(self) -> None:
        self.search = SearchCounters()
        self.cover_games = 0
        self.vectorized_sweeps = 0
        self.plan_compilations = 0

    @property
    def hom_checks(self) -> int:
        return self.search.hom_checks

    @property
    def backtrack_nodes(self) -> int:
        return self.search.backtrack_nodes

    def reset(self) -> None:
        self.search = SearchCounters()
        self.cover_games = 0
        self.vectorized_sweeps = 0
        self.plan_compilations = 0

    def __repr__(self) -> str:
        return (
            f"EngineCounters(hom_checks={self.hom_checks}, "
            f"backtrack_nodes={self.backtrack_nodes}, "
            f"cover_games={self.cover_games}, "
            f"vectorized_sweeps={self.vectorized_sweeps}, "
            f"plan_compilations={self.plan_compilations})"
        )


class _LRUCache:
    """A small bounded LRU over an :class:`OrderedDict`.

    **Concurrency contract.**  The cache (like the whole engine) is
    single-threaded per process: the runtime subsystem parallelizes across
    *processes* with one engine each (:mod:`repro.runtime`), never across
    threads sharing an engine, so no locking is needed here.  The one
    re-entrancy hazard within a single thread is user-defined
    ``__hash__``/``__eq__`` on cache keys (databases hold arbitrary
    hashable elements) calling back into engine code and thereby into
    ``lookup``/``store`` while a lookup or eviction is mid-flight;
    both methods below tolerate the entry they are touching having been
    evicted or the dict having been cleared by such a re-entrant call.
    """

    __slots__ = ("maxsize", "_data", "hits", "misses", "retained", "invalidated")

    _MISSING = object()

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError("cache maxsize must be positive")
        self.maxsize = maxsize
        self._data: "OrderedDict[Any, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.retained = 0
        self.invalidated = 0

    def lookup(self, key: Any) -> Any:
        value = self._data.get(key, self._MISSING)
        if value is self._MISSING:
            self.misses += 1
            return self._MISSING
        self.hits += 1
        try:
            self._data.move_to_end(key)
        except KeyError:
            # The key's __eq__/__hash__ re-entered store()/clear() during
            # the get above and this entry was evicted; the value we read
            # is still the correct result.
            pass
        return value

    def store(self, key: Any, value: Any) -> None:
        self._data[key] = value
        try:
            self._data.move_to_end(key)
        except KeyError:  # re-entrant clear()/eviction removed the entry
            return
        while len(self._data) > self.maxsize:
            try:
                self._data.popitem(last=False)
            except KeyError:  # re-entrant clear() emptied the dict
                break

    def reconcile(
        self, decide: Callable[[Any], Tuple[str, Any]]
    ) -> Tuple[int, int]:
        """Rebuild the cache under a key migration, preserving recency order.

        ``decide(key)`` returns ``("keep", None)``, ``("rekey", new_key)``,
        or ``("drop", None)``.  Returns ``(migrated, dropped)`` and folds
        both into the ``retained``/``invalidated`` tallies.  Migrating a
        key onto an existing one keeps the migrated value (the entries are
        equal results by construction, so either is correct).
        """
        migrated = dropped = 0
        items = list(self._data.items())
        self._data.clear()
        for key, value in items:
            action, new_key = decide(key)
            if action == "drop":
                dropped += 1
                continue
            if action == "rekey":
                if new_key != key:
                    migrated += 1
                self._data[new_key] = value
            else:
                self._data[key] = value
        self.retained += migrated
        self.invalidated += dropped
        return migrated, dropped

    def info(self) -> CacheInfo:
        return CacheInfo(
            self.hits,
            self.misses,
            self.maxsize,
            len(self._data),
            self.retained,
            self.invalidated,
        )

    def clear(self) -> None:
        self._data.clear()
        self.hits = 0
        self.misses = 0
        self.retained = 0
        self.invalidated = 0


class EvaluationEngine:
    """Indexed and memoized evaluation of CQs and homomorphism relations.

    Parameters
    ----------
    cache_size:
        Maximum number of entries per internal cache (pointed hom checks,
        query answers, cover games, compiled plans).  Results are exact
        regardless of the size; a small cache only trades speed for memory.
    use_plans:
        When true (the default), ``selects``/``evaluate`` execute each
        query's compiled :class:`~repro.cq.plan.HomomorphismProgram`
        instead of re-analyzing the canonical database per check.  Turn
        off to benchmark the unplanned search; results are identical
        either way.
    backend:
        ``"python"`` (the default) keeps every evaluation on the pure
        reference hot path.  ``"numpy"`` opts into the vectorized bitset
        backend (:mod:`repro.cq.vectorized`): whole-query evaluations,
        hom checks, and bounded-ghw answers run as batched array sweeps
        when numpy is importable and the instance fits, and fall back to
        the Python path otherwise — results are bit-identical either way
        (enforced by the ``tests/vectorized`` differential harness), and
        :meth:`backend_info` reports the active backend plus the most
        recent fallback reason.
    max_vector_cells:
        Cap on the ``rows × columns`` size of any intermediate join table
        the numpy backend materializes; larger joins fall back to the
        Python path.  Ignored on ``backend="python"``.
    store:
        Optional warm-state store (a path string,
        :class:`~repro.store.ContentStore`, or
        :class:`~repro.store.WarmStore`).  When set, compiled plans and
        memoized answers are persisted to disk and consulted on LRU
        misses, so a fresh process against the same store starts hot.
        Results are bit-identical with or without a store: every loaded
        entry is checksum-verified and decode-validated, and anything
        suspect is quarantined and recomputed.  Default ``None`` keeps the
        engine purely in-memory.
    """

    def __init__(
        self,
        cache_size: int = DEFAULT_CACHE_SIZE,
        use_plans: bool = True,
        backend: str = "python",
        max_vector_cells: Optional[int] = None,
        store: Optional[Any] = None,
    ) -> None:
        if backend not in BACKENDS:
            raise ReproError(
                f"unknown engine backend {backend!r}; "
                f"choose one of {', '.join(BACKENDS)}"
            )
        self._hom_cache = _LRUCache(cache_size)
        self._answer_cache = _LRUCache(cache_size)
        self._game_cache = _LRUCache(cache_size)
        self._plan_cache = _LRUCache(cache_size)
        self.use_plans = use_plans
        self.backend = backend
        if max_vector_cells is None:
            from repro.cq.vectorized import DEFAULT_MAX_CELLS

            max_vector_cells = DEFAULT_MAX_CELLS
        self.max_vector_cells = max_vector_cells
        if store is None:
            self.store = None
        else:
            # Local import: the store subsystem is optional machinery the
            # default (store-less) engine never pays for.
            from repro.store.warm import open_store

            self.store = open_store(store)
        self.counters = EngineCounters()
        self._plan_counters: Optional["PlanCounters"] = None
        #: Most recent reason a vectorized evaluation fell back, or None.
        self.backend_fallback_reason: Optional[str] = None
        self._backend_fallbacks = 0

    # ------------------------------------------------------------------
    # Backend selection and fallback accounting
    # ------------------------------------------------------------------

    @property
    def active_backend(self) -> str:
        """The backend evaluations actually use right now.

        ``"numpy"`` only when it was requested *and* numpy is importable
        (checked dynamically, so disabling numpy mid-session — tests do —
        degrades the engine rather than breaking it).
        """
        if self.backend == "numpy" and bitset_backend.HAVE_NUMPY:
            return "numpy"
        return "python"

    def backend_info(self) -> Dict[str, Any]:
        """Requested/active backend, numpy version, fallback accounting.

        JSON-safe; surfaced by ``InferenceService.metrics_snapshot()`` and
        the benchmark report headers so results stay attributable to the
        backend that produced them.
        """
        reason = self.backend_fallback_reason
        if self.backend == "numpy" and not bitset_backend.HAVE_NUMPY:
            reason = "numpy unavailable"
        return {
            "requested": self.backend,
            "active": self.active_backend,
            "numpy": bitset_backend.numpy_version(),
            "fallbacks": self._backend_fallbacks,
            "fallback_reason": reason,
        }

    def _note_fallback(self, reason: str) -> None:
        self.backend_fallback_reason = reason
        self._backend_fallbacks += 1

    def _vectorized_answer(
        self, query: CQ, database: Database
    ) -> Optional[FrozenSet[Tuple[Element, ...]]]:
        """``q(D)`` via the vectorized backend, or ``None`` on fallback."""
        from repro.cq.vectorized import VectorizedFallback

        program = self.plan_for(query).vectorized()
        try:
            result = program.evaluate(
                database, max_cells=self.max_vector_cells
            )
        except VectorizedFallback as fallback:
            self._note_fallback(str(fallback))
            return None
        self.counters.vectorized_sweeps += 1
        return result

    def _vectorized_hom(
        self,
        source: Database,
        target: Database,
        fixed: Optional[Mapping[Element, Element]],
    ) -> Optional[bool]:
        """Decide ``source → target`` vectorized, or ``None`` on fallback."""
        from repro.cq.vectorized import VectorizedFallback, VectorizedProgram

        key = ("vectorized-hom", source)
        program = self._plan_cache.lookup(key)
        if program is _LRUCache._MISSING:
            program = VectorizedProgram.compile_database(source)
            self._plan_cache.store(key, program)
        try:
            decision = program.decide(
                target, fixed, max_cells=self.max_vector_cells
            )
        except VectorizedFallback as fallback:
            self._note_fallback(str(fallback))
            return None
        # Count the decision as one hom check (metric continuity with the
        # backtracking path) plus one vectorized sweep.
        self.counters.search.hom_checks += 1
        self.counters.vectorized_sweeps += 1
        return decision

    @property
    def plan_counters(self) -> "PlanCounters":
        """Work tally of single-pass structured plan executions."""
        if self._plan_counters is None:
            # Local import: repro.cq.plan is loaded lazily so constructing
            # the module-level default engine stays import-cycle free.
            from repro.cq.plan import PlanCounters

            self._plan_counters = PlanCounters()
        return self._plan_counters

    # ------------------------------------------------------------------
    # Compiled query plans
    # ------------------------------------------------------------------

    def plan_for(self, query: CQ) -> "QueryPlan":
        """The compiled :class:`~repro.cq.plan.QueryPlan` for ``query``.

        Compiled at most once per query (LRU-cached by the query alone —
        plans never depend on a target database).  Hits and misses appear
        under ``"plans"`` in :meth:`cache_details` and are folded into
        :meth:`cache_info`.  With a warm-state store attached, an LRU miss
        consults the store before compiling (``plan_compilations`` counts
        only actual compiles), and every fresh compile is persisted.
        """
        cached = self._plan_cache.lookup(query)
        if cached is not _LRUCache._MISSING:
            return cached
        if self.store is not None:
            plan = self.store.load_plan(query, self.backend)
            if plan is not None:
                self._plan_cache.store(query, plan)
                return plan
        from repro.cq.plan import QueryPlan

        plan = QueryPlan.compile(query)
        self.counters.plan_compilations += 1
        if self.store is not None:
            self.store.save_plan(query, plan, self.backend)
        self._plan_cache.store(query, plan)
        return plan

    def _load_stored_answer(
        self, query: CQ, database: Database
    ) -> Optional[FrozenSet[Tuple[Element, ...]]]:
        """A persisted ``q(D)`` answer, or ``None`` (no store / miss)."""
        if self.store is None:
            return None
        return self.store.load_answer(query, database)

    def _persist_answer(
        self,
        query: CQ,
        database: Database,
        answer: FrozenSet[Tuple[Element, ...]],
    ) -> None:
        if self.store is not None:
            self.store.save_answer(query, database, answer)

    # ------------------------------------------------------------------
    # Homomorphism checks
    # ------------------------------------------------------------------

    def has_homomorphism(
        self,
        source: Database,
        target: Database,
        fixed: Optional[Mapping[Element, Element]] = None,
        program: Optional["HomomorphismProgram"] = None,
    ) -> bool:
        """Memoized ``source → target`` extending ``fixed``.

        When a precompiled ``program`` (over ``source``, seeded with the
        keys of ``fixed``) is given, a cache miss executes it instead of
        the direct search — the decision is identical, only the per-check
        query-side analysis is skipped and the search tree is pruned
        through the target's ``facts_at`` index.
        """
        frozen = frozenset(fixed.items()) if fixed else frozenset()
        key = (source, target, frozen)
        cached = self._hom_cache.lookup(key)
        if cached is not _LRUCache._MISSING:
            return cached
        if self.active_backend == "numpy":
            decision = self._vectorized_hom(source, target, fixed)
            if decision is not None:
                self._hom_cache.store(key, decision)
                return decision
        if program is not None:
            result = program.run(target, fixed, self.counters.search)
        else:
            result = has_homomorphism(
                source, target, fixed, self.counters.search
            )
        self._hom_cache.store(key, result)
        return result

    def pointed_has_homomorphism(
        self,
        source: Database,
        source_tuple: Sequence[Element],
        target: Database,
        target_tuple: Sequence[Element],
    ) -> bool:
        """Memoized ``(D, ā) → (D', b̄)``."""
        if len(source_tuple) != len(target_tuple):
            raise DatabaseError(
                "pointed homomorphism requires equal-length tuples"
            )
        fixed: Dict[Element, Element] = {}
        for element, image in zip(source_tuple, target_tuple):
            existing = fixed.get(element)
            if existing is not None and existing != image:
                return False
            fixed[element] = image
        return self.has_homomorphism(source, target, fixed)

    # ------------------------------------------------------------------
    # CQ evaluation
    # ------------------------------------------------------------------

    def _free_variable_candidates(
        self, query: CQ, database: Database
    ) -> List[Set[Element]]:
        """Per-free-variable candidate sets from the database's index.

        Raises :class:`~repro.exceptions.QueryError` for a free variable
        that appears in no atom: it has no positional constraint at all, so
        no candidate set is sound, and the historical behavior (an empty set,
        silently dropping the variable from all results) hid the malformed
        query.  :class:`~repro.cq.query.CQ` rejects detached free variables
        at construction, so this only triggers on hand-rolled query objects.
        """
        positions = database.index.positions
        candidate_sets: List[Set[Element]] = []
        for variable in query.free_variables:
            candidates: Optional[Set[Element]] = None
            for atom in query.atoms:
                for index, argument in enumerate(atom.arguments):
                    if argument != variable:
                        continue
                    allowed = positions.get((atom.relation, index), frozenset())
                    candidates = (
                        set(allowed)
                        if candidates is None
                        else candidates & allowed
                    )
            if candidates is None:
                raise QueryError(
                    f"free variable {variable} does not occur in any atom"
                )
            candidate_sets.append(candidates)
        return candidate_sets

    def evaluate(
        self, query: CQ, database: Database
    ) -> FrozenSet[Tuple[Element, ...]]:
        """``q(D)`` as a set of tuples, memoized per ``(query, database)``.

        One memoized pointed check per candidate assignment of the free
        variables; candidates are pre-filtered through the database index.
        With a warm-state store, an LRU miss consults the persisted memo
        before any computation, and every computed answer is persisted.
        """
        key = (query, database)
        cached = self._answer_cache.lookup(key)
        if cached is not _LRUCache._MISSING:
            return cached
        stored = self._load_stored_answer(query, database)
        if stored is not None:
            self._answer_cache.store(key, stored)
            return stored

        if self.active_backend == "numpy":
            result = self._vectorized_answer(query, database)
            if result is not None:
                self._answer_cache.store(key, result)
                self._persist_answer(query, database, result)
                return result

        candidate_sets = self._free_variable_candidates(query, database)
        if any(not candidates for candidates in candidate_sets):
            result: FrozenSet[Tuple[Element, ...]] = frozenset()
            self._answer_cache.store(key, result)
            self._persist_answer(query, database, result)
            return result

        canonical = query.canonical_database
        free = query.free_variables
        program = self.plan_for(query).program if self.use_plans else None
        ordered = [sorted(candidates, key=repr) for candidates in candidate_sets]
        results: Set[Tuple[Element, ...]] = set()
        for values in itertools.product(*ordered):
            if self.has_homomorphism(
                canonical, database, dict(zip(free, values)), program
            ):
                results.add(values)
        result = frozenset(results)
        self._answer_cache.store(key, result)
        self._persist_answer(query, database, result)
        return result

    def evaluate_unary(
        self, query: CQ, database: Database
    ) -> FrozenSet[Element]:
        """``q(D)`` for a unary query, as a set of elements."""
        if not query.is_unary:
            raise QueryError("evaluate_unary requires a unary CQ")
        return frozenset(row[0] for row in self.evaluate(query, database))

    def evaluate_ghw(
        self, query: CQ, database: Database, k: int
    ) -> FrozenSet[Element]:
        """``q(D)`` via the compiled single-pass Yannakakis plan (ghw ≤ k).

        The decomposition is found and compiled at most once per
        ``(query, k)`` (on the cached :class:`~repro.cq.plan.QueryPlan`);
        answers share the same memo as :meth:`evaluate`, which is sound
        because the single-pass plan is differentially verified to agree
        with the backtracking path.  Raises
        :class:`~repro.exceptions.DecompositionError` if ``ghw(q) > k``,
        like the uncached reference
        :func:`repro.cq.structured_evaluation.evaluate_ghw`.
        """
        if not query.is_unary:
            raise QueryError("structured evaluation requires a unary CQ")
        structured = self.plan_for(query).structured(k)
        if structured is None:
            raise DecompositionError(f"query has ghw > {k}")
        key = (query, database)
        cached = self._answer_cache.lookup(key)
        if cached is not _LRUCache._MISSING:
            return frozenset(row[0] for row in cached)
        stored = self._load_stored_answer(query, database)
        if stored is not None:
            self._answer_cache.store(key, stored)
            return frozenset(row[0] for row in stored)
        if self.active_backend == "numpy":
            # Same answer memo as evaluate(): the vectorized sweep is
            # differentially verified against both reference paths.
            result = self._vectorized_answer(query, database)
            if result is not None:
                self._answer_cache.store(key, result)
                self._persist_answer(query, database, result)
                return frozenset(row[0] for row in result)
        answer = structured.evaluate(database, self.plan_counters)
        rows = frozenset((element,) for element in answer)
        self._answer_cache.store(key, rows)
        self._persist_answer(query, database, rows)
        return answer

    def selects(self, query: CQ, database: Database, element: Element) -> bool:
        """Whether ``element ∈ q(D)``, by one memoized pointed check.

        On the numpy backend the whole answer set is computed (and
        memoized) in one vectorized sweep instead — repeated ``selects``
        over the same pair then amortize to cache lookups, which is the
        access pattern of every indicator-matrix fill.
        """
        if not query.is_unary:
            raise QueryError("selects requires a unary CQ")
        if self.active_backend == "numpy":
            key = (query, database)
            cached = self._answer_cache.lookup(key)
            if cached is not _LRUCache._MISSING:
                return (element,) in cached
            stored = self._load_stored_answer(query, database)
            if stored is not None:
                self._answer_cache.store(key, stored)
                return (element,) in stored
            result = self._vectorized_answer(query, database)
            if result is not None:
                self._answer_cache.store(key, result)
                self._persist_answer(query, database, result)
                return (element,) in result
        program = self.plan_for(query).program if self.use_plans else None
        return self.has_homomorphism(
            query.canonical_database,
            database,
            {query.free_variable: element},
            program,
        )

    def indicator(
        self, query: CQ, database: Database, element: Element
    ) -> int:
        """The paper's ``1_{q(D)}(e)``: +1 if selected, -1 otherwise."""
        return 1 if self.selects(query, database, element) else -1

    def indicator_vector(
        self, queries: Iterable[CQ], database: Database, element: Element
    ) -> Tuple[int, ...]:
        """``Π^D(e)`` for one element via memoized pointed checks."""
        return tuple(
            self.indicator(query, database, element) for query in queries
        )

    # ------------------------------------------------------------------
    # Batch entry points
    # ------------------------------------------------------------------

    def _evaluate_queries(
        self,
        queries: Sequence[CQ],
        database: Database,
        executor: Optional["Executor"],
    ) -> List[FrozenSet[Element]]:
        """Answer sets for a batch of unary queries, optionally sharded.

        With a multi-worker executor, queries missing from the answer cache
        are dispatched as shards to worker processes (each running the same
        pure :meth:`evaluate_unary` on its own engine), merged back in query
        order, and stored into this engine's cache — so parallel results are
        bit-identical to serial ones and later serial calls stay warm.
        """
        if executor is None or executor.workers <= 1 or len(queries) <= 1:
            return [self.evaluate_unary(query, database) for query in queries]
        for query in queries:
            if not query.is_unary:
                raise QueryError("evaluate_unary requires a unary CQ")
        # Local import: repro.runtime imports this module at load time.
        from repro.runtime.tasks import evaluate_unary_queries

        answers: Dict[CQ, FrozenSet[Element]] = {}
        pending: List[CQ] = []
        for query in queries:
            cached = self._answer_cache.lookup((query, database))
            if cached is _LRUCache._MISSING:
                if query in answers:
                    continue
                stored = self._load_stored_answer(query, database)
                if stored is not None:
                    self._answer_cache.store((query, database), stored)
                    answers[query] = frozenset(row[0] for row in stored)
                else:
                    answers[query] = frozenset()  # placeholder, filled below
                    pending.append(query)
            else:
                answers[query] = frozenset(
                    row[0] for row in cached
                )
        if pending:
            # Broadcast the shared target database once (digest-keyed):
            # shard payloads carry a tiny ref, workers resolve it from
            # their resident cache, and only the query chunks ship.
            target = executor.broadcast(database)
            evaluated = executor.run(
                evaluate_unary_queries,
                pending,
                lambda chunk: (tuple(chunk), target),
            )
            for query, answer in zip(pending, evaluated):
                answers[query] = answer
                rows = frozenset((element,) for element in answer)
                self._answer_cache.store((query, database), rows)
                self._persist_answer(query, database, rows)
        return [answers[query] for query in queries]

    def indicator_matrix(
        self,
        queries: Sequence[CQ],
        database: Database,
        elements: Sequence[Element],
        executor: Optional["Executor"] = None,
    ) -> Tuple[Tuple[int, ...], ...]:
        """Rows ``Π^D(e)`` for each element, amortizing across elements.

        Each query is evaluated once over the database (memoized), and all
        element rows are read off the answer sets — ``len(queries)`` query
        evaluations instead of ``len(queries) × len(elements)`` independent
        ``selects`` candidate derivations.  With a multi-worker
        ``executor`` the query evaluations are sharded across worker
        processes (order-preserving, bit-identical results).
        """
        answers = self._evaluate_queries(queries, database, executor)
        return tuple(
            tuple(1 if element in answer else -1 for answer in answers)
            for element in elements
        )

    def evaluate_statistic(
        self,
        statistic: Iterable[CQ],
        database: Database,
        entities: Optional[Sequence[Element]] = None,
        executor: Optional["Executor"] = None,
    ) -> Dict[Element, Tuple[int, ...]]:
        """``Π^D`` over all (or the given) entities, evaluated batch-wise.

        Accepts a :class:`~repro.core.statistic.Statistic` or any iterable
        of unary feature queries, and an optional
        :class:`~repro.runtime.Executor` to shard the per-query work.
        """
        queries = list(statistic)
        if entities is None:
            entities = sorted(database.entities(), key=repr)
        rows = self.indicator_matrix(queries, database, entities, executor)
        return dict(zip(entities, rows))

    # ------------------------------------------------------------------
    # Cover games (Section 5; used by Algorithm 1 and GHW-QBE)
    # ------------------------------------------------------------------

    def cover_game(
        self,
        source: Database,
        source_tuple: Sequence[Element],
        target: Database,
        target_tuple: Sequence[Element],
        k: int,
    ) -> bool:
        """Memoized ``(D, ā) →_k (D', b̄)`` (existential k-cover game)."""
        key = (source, tuple(source_tuple), target, tuple(target_tuple), k)
        cached = self._game_cache.lookup(key)
        if cached is not _LRUCache._MISSING:
            return cached
        # Local import: repro.covergame imports repro.cq at module load.
        from repro.covergame.game import cover_game_holds

        self.counters.cover_games += 1
        result = cover_game_holds(source, source_tuple, target, target_tuple, k)
        self._game_cache.store(key, result)
        return result

    # ------------------------------------------------------------------
    # Delta-aware cache invalidation (repro.stream integration)
    # ------------------------------------------------------------------

    def apply_delta(
        self,
        before: Database,
        after: Database,
        touched_relations: Iterable[str],
    ) -> Dict[str, int]:
        """Migrate caches across a database delta, relation-scoped.

        ``after`` is ``before`` plus a delta whose facts all lie in
        ``touched_relations``; ``before`` is assumed retired (a streaming
        consumer moves on to the new version and never queries the old
        snapshot again).  Every cached result keyed to ``before`` is
        reconciled:

        - **Retained.**  Entries whose query/source side mentions only
          relations *disjoint* from ``touched_relations`` are rekeyed to
          ``after``.  This is sound because every engine result — a query
          answer, a (pointed) hom check, a cover game — depends only on
          the target's facts over the relations the query/source mentions
          (a homomorphism maps source facts to target facts; nothing else
          about the target is inspected), and those facts are unchanged.
        - **Invalidated.**  Entries whose query mentions a touched relation,
          and entries where the retired ``before`` appears on the *source*
          side (the delta changed the source itself), are evicted.

        Entries referencing neither database are untouched, and the plan
        cache is not reconciled at all: compiled plans depend only on the
        query, never on any target database, so every plan stays valid
        across any delta.
        Returns the ``{"retained": ..., "invalidated": ...}`` counts for
        this delta; cumulative tallies appear in :meth:`cache_info` and
        :meth:`work_snapshot`.
        """
        touched = frozenset(touched_relations)

        def involves(database: Database) -> bool:
            return database is before or database == before

        def decide_answer(key: Any) -> Tuple[str, Any]:
            query, database = key
            if not involves(database):
                return ("keep", None)
            if touched.isdisjoint(query.mentioned_relations()):
                return ("rekey", (query, after))
            return ("drop", None)

        def decide_hom(key: Any) -> Tuple[str, Any]:
            source, target, frozen = key
            if involves(target):
                if touched.isdisjoint(source.relation_names):
                    return ("rekey", (source, after, frozen))
                return ("drop", None)
            if involves(source):
                return ("drop", None)
            return ("keep", None)

        def decide_game(key: Any) -> Tuple[str, Any]:
            source, source_tuple, target, target_tuple, k = key
            if involves(target):
                if touched.isdisjoint(source.relation_names):
                    return (
                        "rekey",
                        (source, source_tuple, after, target_tuple, k),
                    )
                return ("drop", None)
            if involves(source):
                return ("drop", None)
            return ("keep", None)

        retained = invalidated = 0
        for cache, decide in (
            (self._answer_cache, decide_answer),
            (self._hom_cache, decide_hom),
            (self._game_cache, decide_game),
        ):
            migrated, dropped = cache.reconcile(decide)
            retained += migrated
            invalidated += dropped
        result = {"retained": retained, "invalidated": invalidated}
        if self.store is not None:
            # Hygiene mirror of the in-memory rule: the retired digest's
            # touched entries are dead weight on disk (content-addressed
            # keys make them unreachable for correctness purposes anyway).
            result["store_invalidated"] = self.store.invalidate_database(
                before, touched
            )
        return result

    # ------------------------------------------------------------------
    # Cache management and instrumentation
    # ------------------------------------------------------------------

    def cache_info(self) -> CacheInfo:
        """Aggregated statistics over all internal caches."""
        infos = [
            self._hom_cache.info(),
            self._answer_cache.info(),
            self._game_cache.info(),
            self._plan_cache.info(),
        ]
        return CacheInfo(
            hits=sum(info.hits for info in infos),
            misses=sum(info.misses for info in infos),
            maxsize=sum(info.maxsize for info in infos),
            currsize=sum(info.currsize for info in infos),
            retained=sum(info.retained for info in infos),
            invalidated=sum(info.invalidated for info in infos),
        )

    def cache_details(self) -> Dict[str, CacheInfo]:
        """Per-cache statistics keyed by cache name."""
        return {
            "hom": self._hom_cache.info(),
            "answers": self._answer_cache.info(),
            "games": self._game_cache.info(),
            "plans": self._plan_cache.info(),
        }

    def clear(self) -> None:
        """Drop all cached results (and their hit/miss tallies)."""
        self._hom_cache.clear()
        self._answer_cache.clear()
        self._game_cache.clear()
        self._plan_cache.clear()
        self._plan_counters = None

    def work_snapshot(self) -> Dict[str, int]:
        """Cumulative work counters, for delta-based benchmark reporting."""
        info = self.cache_info()
        snapshot = {
            "hom_checks": self.counters.hom_checks,
            "backtrack_nodes": self.counters.backtrack_nodes,
            "cover_games": self.counters.cover_games,
            "vectorized_sweeps": self.counters.vectorized_sweeps,
            "plan_compilations": self.counters.plan_compilations,
            "backend_fallbacks": self._backend_fallbacks,
            "cache_hits": info.hits,
            "cache_misses": info.misses,
            "cache_retained": info.retained,
            "cache_invalidated": info.invalidated,
        }
        if self.store is not None:
            snapshot["store_plan_hits"] = self.store.plan_hits
            snapshot["store_plan_misses"] = self.store.plan_misses
            snapshot["store_memo_hits"] = self.store.memo_hits
            snapshot["store_memo_misses"] = self.store.memo_misses
        return snapshot


_default_engine = EvaluationEngine()


def default_engine() -> EvaluationEngine:
    """The process-wide engine behind the module-level wrapper functions."""
    return _default_engine


def set_default_engine(engine: EvaluationEngine) -> EvaluationEngine:
    """Swap the process-wide engine; returns the previous one."""
    global _default_engine
    previous = _default_engine
    _default_engine = engine
    return previous
