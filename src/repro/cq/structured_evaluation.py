"""Decomposition-guided CQ evaluation (Yannakakis-style; paper, Section 5).

The paper's tractability results for GHW(k) rest on the fact that CQs of
bounded generalized hypertree width are evaluable in polynomial time [12]:
materialize one relation per bag of a width-k tree decomposition (a join of
≤ k atoms), run semijoin passes up and down the tree (Yannakakis'
algorithm), then read off the free-variable bindings.

This module implements that evaluator for *unary* CQs given a
:class:`~repro.hypergraph.decomposition.TreeDecomposition`.  It serves as a
second, independent evaluation path: the test suite differentially checks
it against the backtracking engine of :mod:`repro.cq.evaluation`, and it is
asymptotically polynomial for fixed k where backtracking is exponential.

Bags contain existential variables only (the paper's convention); the free
variable is handled by keeping it as an extra column in every bag relation
that constrains it.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.cq.plan import PlanCounters
from repro.cq.query import CQ
from repro.cq.terms import Atom, Variable
from repro.data.database import Database
from repro.exceptions import DecompositionError, QueryError
from repro.hypergraph.decomposition import TreeDecomposition
from repro.hypergraph.ghw import decompose

__all__ = ["evaluate_with_decomposition", "evaluate_ghw"]

Element = object
_Row = Tuple  # binding tuple over a bag's column order


def _atom_matches(
    atom: Atom, database: Database
) -> List[Dict[Variable, Element]]:
    """All bindings of an atom's variables against the database."""
    matches = []
    for fact in database.facts_of(atom.relation):
        binding: Dict[Variable, Element] = {}
        consistent = True
        for variable, element in zip(atom.arguments, fact.arguments):
            existing = binding.get(variable)
            if existing is not None and existing != element:
                consistent = False
                break
            binding[variable] = element
        if consistent:
            matches.append(binding)
    return matches


def _join(
    left_columns: Sequence[Variable],
    left_rows: Set[_Row],
    binding_list: List[Dict[Variable, Element]],
    add_variables: Sequence[Variable],
) -> Tuple[List[Variable], Set[_Row]]:
    """Join bag rows with an atom's bindings on shared variables."""
    columns = list(left_columns)
    new_columns = [v for v in add_variables if v not in columns]
    result: Set[_Row] = set()
    shared = [v for v in add_variables if v in columns]
    index: Dict[Tuple, List[Dict[Variable, Element]]] = {}
    for binding in binding_list:
        key = tuple(binding[v] for v in shared)
        index.setdefault(key, []).append(binding)
    position = {v: i for i, v in enumerate(columns)}
    for row in left_rows:
        key = tuple(row[position[v]] for v in shared)
        for binding in index.get(key, []):
            result.add(row + tuple(binding[v] for v in new_columns))
    return columns + new_columns, result


def _bag_relation(
    bag: FrozenSet[Variable],
    free: Variable,
    query: CQ,
    database: Database,
    free_value: Element,
) -> Tuple[List[Variable], Set[_Row]]:
    """Materialize all bindings of a bag's variables.

    Every atom whose existential variables lie inside the bag contributes a
    (semi)join constraint; atoms touching variables outside the bag are
    handled by the tree passes instead.  The free variable is fixed to
    ``free_value`` throughout.
    """
    relevant = [
        atom
        for atom in query.atoms
        if all(
            variable == free or variable in bag
            for variable in atom.arguments
        )
    ]
    columns: List[Variable] = []
    rows: Set[_Row] = {()}
    for atom in relevant:
        bindings = []
        for candidate in _atom_matches(atom, database):
            if candidate.get(free, free_value) != free_value:
                continue
            bindings.append({**candidate, free: free_value})
        atom_variables = [
            v for v in dict.fromkeys(atom.arguments) if v != free
        ]
        columns, rows = _join(columns, rows, bindings, atom_variables)
        if not rows:
            return columns, rows
    # Unconstrained bag variables range over the whole domain (repr-sorted
    # once per database on its index, not once per variable per call).
    missing = [v for v in sorted(bag) if v not in columns]
    if missing:
        domain = database.index.sorted_domain
        for variable in missing:
            rows = {
                row + (element,) for row in rows for element in domain
            }
            columns.append(variable)
    return columns, rows


def _semijoin(
    columns: Sequence[Variable],
    rows: Set[_Row],
    other_columns: Sequence[Variable],
    other_rows: Set[_Row],
) -> Set[_Row]:
    """Keep rows having a join partner in the other relation."""
    shared = [v for v in columns if v in other_columns]
    if not shared:
        return rows if other_rows else set()
    other_position = {v: i for i, v in enumerate(other_columns)}
    keys = {
        tuple(row[other_position[v]] for v in shared)
        for row in other_rows
    }
    position = {v: i for i, v in enumerate(columns)}
    return {
        row
        for row in rows
        if tuple(row[position[v]] for v in shared) in keys
    }


def evaluate_with_decomposition(
    query: CQ,
    decomposition: TreeDecomposition,
    database: Database,
    counters: Optional[PlanCounters] = None,
) -> FrozenSet[Element]:
    """``q(D)`` for a unary query via Yannakakis passes over the decomposition.

    Every atom must be covered by some bag (its existential variables inside
    the bag) — guaranteed by a valid decomposition.  Cost is polynomial in
    ``|D|^k`` for a width-k decomposition — times an extra ``O(|dom|)``
    factor from the per-candidate outer loop below, which re-materializes
    every bag relation once per candidate free value.  The compiled
    single-pass evaluator in :class:`repro.cq.plan.YannakakisPlan` removes
    that factor; this per-candidate path is kept as the independent
    reference it is differentially tested against.  Pass a
    :class:`~repro.cq.plan.PlanCounters` to tally bag materializations,
    rows produced, and semijoin steps for work comparisons.
    """
    if not query.is_unary:
        raise QueryError("structured evaluation requires a unary CQ")
    if decomposition.query != query:
        raise DecompositionError(
            "decomposition does not belong to this query"
        )
    free = query.free_variable

    # Candidate free values: elements matching every atom that mentions
    # only the free variable (e.g. the entity atom).
    candidates: Optional[Set[Element]] = None
    for atom in query.atoms:
        if set(atom.arguments) == {free}:
            values = {
                binding[free]
                for binding in _atom_matches(atom, database)
            }
            candidates = (
                values if candidates is None else candidates & values
            )
    if candidates is None:
        candidates = set(database.domain)

    n = len(decomposition.bags)
    adjacency: Dict[int, List[int]] = {i: [] for i in range(n)}
    for left, right in decomposition.edges:
        adjacency[left].append(right)
        adjacency[right].append(left)

    order: List[int] = []
    parent: Dict[int, Optional[int]] = {0: None}
    stack = [0]
    seen = {0}
    while stack:
        node = stack.pop()
        order.append(node)
        for neighbor in adjacency[node]:
            if neighbor not in seen:
                seen.add(neighbor)
                parent[neighbor] = node
                stack.append(neighbor)

    if counters is not None:
        counters.evaluations += 1
    answers: Set[Element] = set()
    for value in sorted(candidates, key=repr):
        relations: Dict[int, Tuple[List[Variable], Set[_Row]]] = {}
        empty = False
        for node in range(n):
            columns, rows = _bag_relation(
                decomposition.bags[node], free, query, database, value
            )
            if counters is not None:
                counters.bag_relations += 1
                counters.bag_rows += len(rows)
            relations[node] = (columns, rows)
            if not rows:
                empty = True
                break
        if empty:
            continue
        # Upward semijoin pass (children into parents, leaves first).
        alive = True
        for node in reversed(order):
            parent_node = parent[node]
            if parent_node is None:
                continue
            p_columns, p_rows = relations[parent_node]
            c_columns, c_rows = relations[node]
            p_rows = _semijoin(p_columns, p_rows, c_columns, c_rows)
            if counters is not None:
                counters.semijoins += 1
            relations[parent_node] = (p_columns, p_rows)
            if not p_rows:
                alive = False
                break
        if alive and relations[order[0]][1]:
            answers.add(value)
    return frozenset(answers)


def evaluate_ghw(
    query: CQ, database: Database, k: int
) -> FrozenSet[Element]:
    """Decompose (must have ghw ≤ k) and evaluate via the decomposition.

    Uncached per-candidate reference path; the compiled, memoized
    equivalent is :meth:`repro.cq.engine.EvaluationEngine.evaluate_ghw`.
    """
    decomposition = decompose(query, k)
    if decomposition is None:
        raise DecompositionError(f"query has ghw > {k}")
    return evaluate_with_decomposition(query, decomposition, database)
