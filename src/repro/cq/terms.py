"""Variables and atoms of conjunctive queries (paper, Section 2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

from repro.exceptions import QueryError

__all__ = ["Variable", "Atom"]


@dataclass(frozen=True, order=True)
class Variable:
    """A query variable, identified by its name."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise QueryError("variable name must be nonempty")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, order=True)
class Atom:
    """An atom ``R(x1, ..., xk)`` over variables only (CQs without constants)."""

    relation: str
    arguments: Tuple[Variable, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "arguments", tuple(self.arguments))
        if not self.relation:
            raise QueryError("atom relation name must be nonempty")
        if len(self.arguments) < 1:
            raise QueryError(
                f"atom over {self.relation!r} must have at least one argument"
            )
        for argument in self.arguments:
            if not isinstance(argument, Variable):
                raise QueryError(
                    f"atom arguments must be Variables, got {argument!r}"
                )

    @property
    def arity(self) -> int:
        return len(self.arguments)

    @property
    def variables(self) -> FrozenSet[Variable]:
        return frozenset(self.arguments)

    def __str__(self) -> str:
        inner = ", ".join(str(v) for v in self.arguments)
        return f"{self.relation}({inner})"
