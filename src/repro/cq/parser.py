"""Datalog-style textual syntax for conjunctive queries.

The grammar is the usual rule syntax::

    q(x) :- eta(x), edge(x, y), edge(y, z)

Head variables are the free variables; every other variable is existential.
Relation and variable names are word characters (``\\w+``).
"""

from __future__ import annotations

import re
from typing import List, Tuple

from repro.cq.query import CQ
from repro.cq.terms import Atom, Variable
from repro.exceptions import ParseError

__all__ = ["parse_cq"]

_RULE_RE = re.compile(
    r"^\s*(\w+)\s*\(\s*([^)]*)\s*\)\s*:-\s*(.+?)\s*\.?\s*$", re.DOTALL
)
_ATOM_RE = re.compile(r"(\w+)\s*\(\s*([^)]*)\s*\)")


def _split_variables(inner: str, context: str) -> Tuple[Variable, ...]:
    tokens = [token.strip() for token in inner.split(",")] if inner.strip() else []
    if not tokens:
        raise ParseError(f"{context}: empty argument list")
    for token in tokens:
        if not re.fullmatch(r"\w+", token):
            raise ParseError(f"{context}: invalid variable name {token!r}")
    return tuple(Variable(token) for token in tokens)


def parse_cq(text: str) -> CQ:
    """Parse a rule of the form ``q(x, y) :- R(x, z), S(z, y)`` into a CQ."""
    match = _RULE_RE.match(text)
    if match is None:
        raise ParseError(f"cannot parse CQ rule: {text!r}")
    _head_name, head_inner, body = match.groups()
    free = _split_variables(head_inner, "head")

    atoms: List[Atom] = []
    consumed = 0
    for atom_match in _ATOM_RE.finditer(body):
        between = body[consumed:atom_match.start()].strip().strip(",").strip()
        if between:
            raise ParseError(f"unexpected text in body: {between!r}")
        relation, inner = atom_match.groups()
        atoms.append(Atom(relation, _split_variables(inner, f"atom {relation}")))
        consumed = atom_match.end()
    trailing = body[consumed:].strip().strip(",").strip()
    if trailing:
        raise ParseError(f"unexpected text in body: {trailing!r}")
    if not atoms:
        raise ParseError("CQ body must contain at least one atom")
    return CQ(atoms, free)
