"""Containment and equivalence of conjunctive queries.

By the Chandra–Merlin theorem, ``q1 ⊆ q2`` (the answers of q1 are contained
in those of q2 over every database) iff there is a homomorphism
``(D_{q2}, x̄2) → (D_{q1}, x̄1)``.
"""

from __future__ import annotations

from repro.cq.homomorphism import pointed_has_homomorphism
from repro.cq.query import CQ
from repro.exceptions import QueryError

__all__ = ["is_contained_in", "are_equivalent"]


def is_contained_in(query: CQ, container: CQ) -> bool:
    """Whether ``query ⊆ container`` holds over all databases."""
    if len(query.free_variables) != len(container.free_variables):
        raise QueryError(
            "containment requires queries of the same output arity"
        )
    return pointed_has_homomorphism(
        container.canonical_database,
        container.free_variables,
        query.canonical_database,
        query.free_variables,
    )


def are_equivalent(left: CQ, right: CQ) -> bool:
    """Whether the two queries agree on every database."""
    return is_contained_in(left, right) and is_contained_in(right, left)
