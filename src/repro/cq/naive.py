"""Frozen naive evaluation path, kept as the differential-testing oracle.

This module preserves the original, uncached implementations of
homomorphism search and CQ evaluation: every call rebuilds the target's
positional-occurrence table from scratch and runs one fresh backtracking
search — no database index, no memoization.  The indexed and memoized
implementations live in :mod:`repro.cq.engine`; the differential test suite
(``tests/cq/test_engine_differential.py``) and the engine ablation bench
pit the two against each other on randomized workloads.

Nothing in the library proper should import this module on a hot path.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.cq.homomorphism import SearchCounters
from repro.cq.query import CQ
from repro.data.database import Database, Fact
from repro.exceptions import QueryError

__all__ = [
    "naive_has_homomorphism",
    "naive_all_homomorphisms",
    "naive_evaluate",
    "naive_evaluate_unary",
    "naive_selects",
]

Element = Any
Assignment = Dict[Element, Element]


def _positional_candidates(
    source: Database, target: Database
) -> Optional[Dict[Element, Set[Element]]]:
    """Per-source-element candidate sets, rebuilt from scratch every call."""
    target_positions: Dict[Tuple[str, int], Set[Element]] = {}
    for fact in target.facts:
        for index, element in enumerate(fact.arguments):
            target_positions.setdefault((fact.relation, index), set()).add(
                element
            )

    candidates: Dict[Element, Set[Element]] = {}
    for fact in source.facts:
        for index, element in enumerate(fact.arguments):
            allowed = target_positions.get((fact.relation, index))
            if allowed is None:
                return None
            if element in candidates:
                candidates[element] &= allowed
                if not candidates[element]:
                    return None
            else:
                candidates[element] = set(allowed)
    return candidates


def _order_facts(source: Database, seeded: Set[Element]) -> List[Fact]:
    """Greedy fact ordering: most already-touched elements first."""
    remaining = sorted(source.facts, key=repr)
    ordered: List[Fact] = []
    touched = set(seeded)
    while remaining:
        best_index = 0
        best_key: Optional[Tuple[int, int]] = None
        for index, fact in enumerate(remaining):
            overlap = sum(1 for a in fact.elements if a in touched)
            new_elements = len(fact.elements) - overlap
            key = (-overlap, new_elements)
            if best_key is None or key < best_key:
                best_key = key
                best_index = index
        fact = remaining.pop(best_index)
        ordered.append(fact)
        touched.update(fact.elements)
    return ordered


def naive_all_homomorphisms(
    source: Database,
    target: Database,
    fixed: Optional[Mapping[Element, Element]] = None,
    counters: Optional[SearchCounters] = None,
) -> Iterator[Assignment]:
    """Yield every homomorphism from ``source`` to ``target`` extending ``fixed``."""
    if counters is not None:
        counters.hom_checks += 1
    assignment: Assignment = dict(fixed) if fixed else {}

    candidates = _positional_candidates(source, target)
    if candidates is None:
        return
    for element, image in assignment.items():
        allowed = candidates.get(element)
        if allowed is not None and image not in allowed:
            return

    facts = _order_facts(source, set(assignment))
    target_by_relation = {
        relation: target.facts_of(relation)
        for relation in source.relation_names
    }

    n_facts = len(facts)
    if n_facts == 0:
        yield dict(assignment)
        return
    stack: List[Tuple[int, List[Element]]] = [(0, [])]
    while stack:
        level = len(stack) - 1
        index, bound_here = stack[-1]
        for element in bound_here:
            del assignment[element]
        bound_here.clear()
        fact = facts[level]
        options = target_by_relation[fact.relation]
        advanced = False
        while index < len(options):
            target_fact = options[index]
            index += 1
            if counters is not None:
                counters.backtrack_nodes += 1
            newly_bound: List[Element] = []
            consistent = True
            for element, image in zip(fact.arguments, target_fact.arguments):
                bound = assignment.get(element)
                if bound is not None:
                    if bound != image:
                        consistent = False
                        break
                elif image not in candidates.get(element, ()):
                    consistent = False
                    break
                else:
                    assignment[element] = image
                    newly_bound.append(element)
            if consistent:
                if level + 1 == n_facts:
                    yield dict(assignment)
                    for bound in newly_bound:
                        del assignment[bound]
                    continue
                stack[-1] = (index, newly_bound)
                stack.append((0, []))
                advanced = True
                break
            for bound in newly_bound:
                del assignment[bound]
        if not advanced:
            stack.pop()


def naive_has_homomorphism(
    source: Database,
    target: Database,
    fixed: Optional[Mapping[Element, Element]] = None,
    counters: Optional[SearchCounters] = None,
) -> bool:
    """Whether ``source → target`` (uncached reference decision)."""
    for _ in naive_all_homomorphisms(source, target, fixed, counters):
        return True
    return False


def _free_variable_candidates(
    query: CQ, database: Database
) -> List[Set[Element]]:
    """Cheap per-free-variable candidate sets from positional occurrence.

    Raises :class:`~repro.exceptions.QueryError` for a free variable that
    appears in no atom: such a variable has no positional constraint at all,
    and silently returning an empty candidate set (the historical behavior)
    dropped it from the results instead of surfacing the malformed query.
    :class:`~repro.cq.query.CQ` already rejects detached free variables at
    construction time, so this only triggers on hand-rolled query objects.
    """
    positions: Dict[Tuple[str, int], Set[Element]] = {}
    for fact in database.facts:
        for index, element in enumerate(fact.arguments):
            positions.setdefault((fact.relation, index), set()).add(element)

    candidate_sets: List[Set[Element]] = []
    for variable in query.free_variables:
        candidates: Optional[Set[Element]] = None
        for atom in query.atoms:
            for index, argument in enumerate(atom.arguments):
                if argument != variable:
                    continue
                allowed = positions.get((atom.relation, index), set())
                candidates = (
                    set(allowed)
                    if candidates is None
                    else candidates & allowed
                )
        if candidates is None:
            raise QueryError(
                f"free variable {variable} does not occur in any atom"
            )
        candidate_sets.append(candidates)
    return candidate_sets


def naive_evaluate(
    query: CQ,
    database: Database,
    counters: Optional[SearchCounters] = None,
) -> FrozenSet[Tuple[Element, ...]]:
    """``q(D)`` by one fresh pointed search per candidate assignment."""
    candidate_sets = _free_variable_candidates(query, database)
    if any(not candidates for candidates in candidate_sets):
        return frozenset()

    canonical = query.canonical_database
    free = query.free_variables
    results: Set[Tuple[Element, ...]] = set()

    def assign(index: int, fixed: Dict[Any, Element]) -> None:
        if index == len(free):
            if naive_has_homomorphism(canonical, database, fixed, counters):
                results.add(tuple(fixed[v] for v in free))
            return
        variable = free[index]
        for value in sorted(candidate_sets[index], key=repr):
            previous = fixed.get(variable)
            if previous is not None and previous != value:
                continue
            fixed[variable] = value
            assign(index + 1, fixed)
            if previous is None:
                del fixed[variable]

    assign(0, {})
    return frozenset(results)


def naive_evaluate_unary(
    query: CQ,
    database: Database,
    counters: Optional[SearchCounters] = None,
) -> FrozenSet[Element]:
    """``q(D)`` for a unary query, as a set of elements."""
    if not query.is_unary:
        raise QueryError("naive_evaluate_unary requires a unary CQ")
    return frozenset(
        row[0] for row in naive_evaluate(query, database, counters)
    )


def naive_selects(
    query: CQ,
    database: Database,
    element: Element,
    counters: Optional[SearchCounters] = None,
) -> bool:
    """Whether ``element ∈ q(D)`` by a single uncached pointed check."""
    if not query.is_unary:
        raise QueryError("naive_selects requires a unary CQ")
    return naive_has_homomorphism(
        query.canonical_database,
        database,
        {query.free_variable: element},
        counters,
    )
