"""Compile-once query plans: amortizing query-side work across databases.

The paper's tractability story (Table 1, Section 5) evaluates a *fixed*
statistic — the same CQs — over *many* databases, yet the direct evaluators
redo query-side analysis on every check: :func:`~repro.cq.homomorphism.
all_homomorphisms` re-derives the positional-candidate prefilter and re-runs
the greedy fact ordering per call, and the per-candidate decomposition
evaluator in :mod:`repro.cq.structured_evaluation` re-materializes every bag
relation once per candidate free value.  This module compiles each query
once into a :class:`QueryPlan` and reuses the plan against arbitrary target
databases:

- :class:`HomomorphismProgram` — the backtracking path, precompiled from a
  source database (for a CQ, its canonical database): the fact order is
  fixed at compile time, per-element *occurrence signatures* turn the
  positional prefilter into pure index lookups against the target's
  :class:`~repro.data.database.DatabaseIndex`, a *zip schedule* records per
  fact slot which elements are already bound at that point, and per-fact
  *lookup slots* let the search enumerate only the target facts whose
  indexed position matches an already-bound element (the ``facts_at``
  buckets) — strictly fewer search-tree nodes than scanning the relation.
- :class:`YannakakisPlan` — the bounded-ghw path, compiled from a tree
  decomposition: the free variable is kept as the leading column of *every*
  bag relation, so a single bottom-up semijoin pass over hash-joined bag
  relations decides all candidate values at once, and the answer is the
  projection of the root onto the free column.  This removes the
  ``O(|dom|)`` outer loop of the per-candidate reference evaluator.  (A
  downward pass would fully reduce the non-root bags too, but is
  unnecessary when only the root is projected: after the upward pass every
  surviving root row already extends to a full join result.)
- :class:`QueryPlan` — one compiled unit per CQ, holding the homomorphism
  program for the canonical database and lazily-compiled Yannakakis plans
  per width bound.

Plans are **database-independent**: they read only the query (and its
decomposition), never a target's facts, so a plan compiled once is valid
for every database the query is ever evaluated on — including across
:meth:`~repro.cq.engine.EvaluationEngine.apply_delta` migrations, which is
why the engine's plan cache survives streaming deltas untouched.  Plan
execution is instrumented through the same
:class:`~repro.cq.homomorphism.SearchCounters` as the direct search, plus
:class:`PlanCounters` for the structured path's materialization work.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.cq.homomorphism import SearchCounters, _order_facts
from repro.cq.query import CQ
from repro.cq.terms import Variable
from repro.data.database import Database
from repro.exceptions import DatabaseError, DecompositionError, QueryError
from repro.hypergraph.decomposition import TreeDecomposition

__all__ = [
    "PlanCounters",
    "HomomorphismProgram",
    "YannakakisPlan",
    "QueryPlan",
]

Element = Any
Assignment = Dict[Element, Element]
_Row = Tuple  # binding tuple over a bag's column order

#: Sentinel for "no value yet" in pattern extraction (``None`` is a legal
#: database element, so it cannot play that role).
_UNSET = object()


class PlanCounters:
    """Work tally of single-pass structured (Yannakakis) evaluation.

    ``evaluations`` counts plan executions; ``bag_relations`` counts bag
    relations materialized; ``bag_rows`` counts rows produced while
    materializing them; ``semijoins`` counts upward-pass semijoin steps.
    The per-candidate reference evaluator in
    :mod:`repro.cq.structured_evaluation` accepts the same counters, so
    benchmarks can compare the work shapes directly.
    """

    __slots__ = ("evaluations", "bag_relations", "bag_rows", "semijoins")

    def __init__(self) -> None:
        self.evaluations = 0
        self.bag_relations = 0
        self.bag_rows = 0
        self.semijoins = 0

    def snapshot(self) -> Tuple[int, int, int, int]:
        return (
            self.evaluations,
            self.bag_relations,
            self.bag_rows,
            self.semijoins,
        )

    def __repr__(self) -> str:
        return (
            f"PlanCounters(evaluations={self.evaluations}, "
            f"bag_relations={self.bag_relations}, "
            f"bag_rows={self.bag_rows}, semijoins={self.semijoins})"
        )


# ----------------------------------------------------------------------
# Backtracking: precompiled homomorphism programs
# ----------------------------------------------------------------------


class HomomorphismProgram:
    """A compiled backtracking search for one source database.

    Compiled once per ``(source, seeded elements)`` pair and reusable
    against any target database.  ``seeded`` is the set of source elements
    that every ``fixed`` assignment passed to :meth:`run` will bind (for a
    CQ plan: the free variables) — the fact order and the zip schedule
    depend on it, so :meth:`run` rejects assignments over a different key
    set rather than silently searching with a stale schedule.
    """

    __slots__ = (
        "source",
        "seeded",
        "_signatures",
        "_relations",
        "_slots",
        "_lookups",
    )

    def __init__(
        self,
        source: Database,
        seeded: FrozenSet[Element],
        signatures: Tuple[Tuple[Element, Tuple[Tuple[str, int], ...]], ...],
        relations: Tuple[str, ...],
        slots: Tuple[Tuple[Tuple[Element, bool], ...], ...],
        lookups: Tuple[Optional[Tuple[int, Element]], ...],
    ) -> None:
        self.source = source
        self.seeded = seeded
        self._signatures = signatures
        self._relations = relations
        self._slots = slots
        self._lookups = lookups

    @classmethod
    def compile(
        cls, source: Database, seeded: Sequence[Element] = ()
    ) -> "HomomorphismProgram":
        """Analyze ``source`` once: signatures, fact order, zip schedule."""
        seeded_set = frozenset(seeded)

        # Per-element occurrence signature: every (relation, position) the
        # element occupies.  At run time the candidate set of the element
        # is the intersection of the target index's occurrence sets over
        # this signature — no rescan of either side.
        occurrence: Dict[Element, Set[Tuple[str, int]]] = {}
        for fact in source.facts:
            for position, element in enumerate(fact.arguments):
                occurrence.setdefault(element, set()).add(
                    (fact.relation, position)
                )
        signatures = tuple(
            (element, tuple(sorted(pairs)))
            for element, pairs in sorted(
                occurrence.items(), key=lambda item: repr(item[0])
            )
        )

        # The greedy connectivity order is computed once, seeded with the
        # elements every run-time assignment will have bound already.
        facts = _order_facts(source, set(seeded_set))

        # Zip schedule: per fact slot, (element, bound-before?) — True when
        # the element is seeded, bound by an earlier fact in the order, or
        # repeated from an earlier position of the same fact.  Lookup
        # slots: the first position whose element is bound before the fact
        # *starts*, usable to enumerate only matching target facts.
        bound: Set[Element] = set(seeded_set)
        relations: List[str] = []
        slots: List[Tuple[Tuple[Element, bool], ...]] = []
        lookups: List[Optional[Tuple[int, Element]]] = []
        for fact in facts:
            lookup: Optional[Tuple[int, Element]] = None
            for position, element in enumerate(fact.arguments):
                if lookup is None and element in bound:
                    lookup = (position, element)
            slot: List[Tuple[Element, bool]] = []
            seen_now: Set[Element] = set()
            for element in fact.arguments:
                slot.append((element, element in bound or element in seen_now))
                seen_now.add(element)
            bound |= seen_now
            relations.append(fact.relation)
            slots.append(tuple(slot))
            lookups.append(lookup)

        return cls(
            source,
            seeded_set,
            signatures,
            tuple(relations),
            tuple(slots),
            tuple(lookups),
        )

    # ------------------------------------------------------------------

    def _options(
        self, level: int, assignment: Assignment, index: Any
    ) -> Tuple:
        lookup = self._lookups[level]
        relation = self._relations[level]
        if lookup is not None:
            position, element = lookup
            return index.facts_at.get(
                (relation, position, assignment[element]), ()
            )
        return index.facts_by_relation.get(relation, ())

    def solutions(
        self,
        target: Database,
        fixed: Optional[Mapping[Element, Element]] = None,
        counters: Optional[SearchCounters] = None,
    ) -> Iterator[Assignment]:
        """Yield every homomorphism into ``target`` extending ``fixed``.

        ``fixed`` must bind exactly the seeded elements this program was
        compiled for (extra keys outside the source domain are carried
        through, as with :func:`~repro.cq.homomorphism.all_homomorphisms`).
        """
        assignment: Assignment = dict(fixed) if fixed else {}
        if not self.seeded <= set(assignment):
            raise DatabaseError(
                "homomorphism program compiled for seeded elements "
                f"{sorted(map(repr, self.seeded))}, but the assignment "
                f"binds {sorted(map(repr, assignment))}"
            )
        if counters is not None:
            counters.hom_checks += 1

        index = target.index
        positions = index.positions
        candidates: Dict[Element, Set[Element]] = {}
        for element, signature in self._signatures:
            allowed: Optional[Set[Element]] = None
            for key in signature:
                occupied = positions.get(key)
                if occupied is None:
                    return
                allowed = (
                    set(occupied) if allowed is None else allowed & occupied
                )
                if not allowed:
                    return
            assert allowed is not None
            candidates[element] = allowed
        for element, image in assignment.items():
            allowed = candidates.get(element)
            if allowed is not None and image not in allowed:
                return

        n_facts = len(self._slots)
        if n_facts == 0:
            yield dict(assignment)
            return
        # Same explicit-stack DFS shape as all_homomorphisms, except each
        # frame carries its (possibly index-pruned) option tuple.
        stack: List[List[Any]] = [
            [self._options(0, assignment, index), 0, []]
        ]
        while stack:
            frame = stack[-1]
            options, option_index, bound_here = frame
            for element in bound_here:
                del assignment[element]
            del bound_here[:]
            level = len(stack) - 1
            slot = self._slots[level]
            advanced = False
            while option_index < len(options):
                target_fact = options[option_index]
                option_index += 1
                if counters is not None:
                    counters.backtrack_nodes += 1
                newly_bound: List[Element] = []
                consistent = True
                for (element, bound_before), image in zip(
                    slot, target_fact.arguments
                ):
                    if bound_before:
                        if assignment[element] != image:
                            consistent = False
                            break
                    elif image not in candidates.get(element, ()):
                        consistent = False
                        break
                    else:
                        assignment[element] = image
                        newly_bound.append(element)
                if consistent:
                    if level + 1 == n_facts:
                        yield dict(assignment)
                        for element in newly_bound:
                            del assignment[element]
                        continue  # leaf: try the next option directly
                    frame[1] = option_index
                    frame[2] = newly_bound
                    stack.append(
                        [self._options(level + 1, assignment, index), 0, []]
                    )
                    advanced = True
                    break
                for element in newly_bound:
                    del assignment[element]
            if not advanced:
                stack.pop()

    def run(
        self,
        target: Database,
        fixed: Optional[Mapping[Element, Element]] = None,
        counters: Optional[SearchCounters] = None,
    ) -> bool:
        """Whether a homomorphism into ``target`` extending ``fixed`` exists."""
        for _ in self.solutions(target, fixed, counters):
            return True
        return False

    def __repr__(self) -> str:
        return (
            f"HomomorphismProgram(facts={len(self._slots)}, "
            f"seeded={sorted(map(repr, self.seeded))})"
        )


# ----------------------------------------------------------------------
# Bounded ghw: single-pass hash-join Yannakakis plans
# ----------------------------------------------------------------------


class _AtomStep:
    """One compiled hash-join step of a bag materialization."""

    __slots__ = (
        "relation",
        "pattern",
        "shared_row_positions",
        "shared_binding_positions",
        "new_binding_positions",
    )

    def __init__(
        self,
        relation: str,
        pattern: Tuple[int, ...],
        shared_row_positions: Tuple[int, ...],
        shared_binding_positions: Tuple[int, ...],
        new_binding_positions: Tuple[int, ...],
    ) -> None:
        self.relation = relation
        self.pattern = pattern
        self.shared_row_positions = shared_row_positions
        self.shared_binding_positions = shared_binding_positions
        self.new_binding_positions = new_binding_positions


class _BagProgram:
    """Compiled materialization recipe for one bag relation."""

    __slots__ = ("columns", "steps", "pad_count")

    def __init__(
        self,
        columns: Tuple[Variable, ...],
        steps: Tuple[_AtomStep, ...],
        pad_count: int,
    ) -> None:
        self.columns = columns
        self.steps = steps
        self.pad_count = pad_count


class YannakakisPlan:
    """A decomposition compiled into a single-pass semijoin program.

    Every bag relation carries the free variable as its leading column, so
    the bags trivially satisfy the running-intersection property for the
    free variable and one bottom-up semijoin pass suffices: a root row
    surviving the pass extends to a full join result, hence projecting the
    root onto the free column yields exactly ``q(D)``.
    """

    __slots__ = (
        "query",
        "decomposition",
        "_candidate_steps",
        "_bags",
        "_order",
        "_parent",
        "_semijoin_positions",
    )

    def __init__(self, query: CQ, decomposition: TreeDecomposition) -> None:
        if not query.is_unary:
            raise QueryError("structured evaluation requires a unary CQ")
        if decomposition.query != query:
            raise DecompositionError(
                "decomposition does not belong to this query"
            )
        self.query = query
        self.decomposition = decomposition
        free = query.free_variable

        # Atoms mentioning only the free variable constrain the candidate
        # column directly; they are folded into the initial candidate set
        # rather than joined into every bag.
        self._candidate_steps: Tuple[Tuple[str, Tuple[int, ...]], ...] = tuple(
            (atom.relation, tuple(0 for _ in atom.arguments))
            for atom in query.atoms
            if set(atom.arguments) == {free}
        )

        bags: List[_BagProgram] = []
        for bag in decomposition.bags:
            columns: List[Variable] = [free]
            steps: List[_AtomStep] = []
            for atom in query.atoms:
                if set(atom.arguments) == {free}:
                    continue
                if not all(
                    variable == free or variable in bag
                    for variable in atom.arguments
                ):
                    continue
                var_order = list(dict.fromkeys(atom.arguments))
                pattern = tuple(
                    var_order.index(variable) for variable in atom.arguments
                )
                shared = [v for v in var_order if v in columns]
                fresh = [v for v in var_order if v not in columns]
                steps.append(
                    _AtomStep(
                        atom.relation,
                        pattern,
                        tuple(columns.index(v) for v in shared),
                        tuple(var_order.index(v) for v in shared),
                        tuple(var_order.index(v) for v in fresh),
                    )
                )
                columns.extend(fresh)
            pad = [v for v in sorted(bag) if v not in columns]
            columns.extend(pad)
            bags.append(_BagProgram(tuple(columns), tuple(steps), len(pad)))
        self._bags = tuple(bags)

        # Tree traversal: DFS from node 0, exactly as the reference
        # evaluator orders it, with parents precomputed.
        n = len(decomposition.bags)
        adjacency: Dict[int, List[int]] = {i: [] for i in range(n)}
        for left, right in decomposition.edges:
            adjacency[left].append(right)
            adjacency[right].append(left)
        order: List[int] = []
        parent: Dict[int, Optional[int]] = {0: None}
        stack = [0]
        seen = {0}
        while stack:
            node = stack.pop()
            order.append(node)
            for neighbor in adjacency[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    parent[neighbor] = node
                    stack.append(neighbor)
        self._order = tuple(order)
        self._parent = parent

        # Per-node semijoin column positions against its parent.  The free
        # variable leads every bag, so the shared column list is never
        # empty and always propagates free-value consistency.
        semijoin: Dict[int, Tuple[Tuple[int, ...], Tuple[int, ...]]] = {}
        for node, parent_node in parent.items():
            if parent_node is None:
                continue
            parent_columns = self._bags[parent_node].columns
            child_columns = self._bags[node].columns
            shared = [v for v in parent_columns if v in child_columns]
            semijoin[node] = (
                tuple(parent_columns.index(v) for v in shared),
                tuple(child_columns.index(v) for v in shared),
            )
        self._semijoin_positions = semijoin

    # ------------------------------------------------------------------

    @classmethod
    def compile(
        cls, query: CQ, decomposition: TreeDecomposition
    ) -> "YannakakisPlan":
        return cls(query, decomposition)

    @staticmethod
    def _pattern_rows(
        database: Database,
        relation: str,
        pattern: Tuple[int, ...],
        memo: Dict[Tuple[str, Tuple[int, ...]], Tuple[_Row, ...]],
    ) -> Tuple[_Row, ...]:
        """All variable-binding rows of an atom pattern, one relation scan.

        ``pattern[i]`` is the variable slot of argument position ``i``;
        repeated slots enforce equality.  Memoized per evaluation so atoms
        sharing a pattern scan the relation once.
        """
        key = (relation, pattern)
        cached = memo.get(key)
        if cached is not None:
            return cached
        n_slots = max(pattern) + 1 if pattern else 0
        rows: List[_Row] = []
        for fact in database.facts_of(relation):
            values: List[Any] = [_UNSET] * n_slots
            consistent = True
            for slot, element in zip(pattern, fact.arguments):
                current = values[slot]
                if current is _UNSET:
                    values[slot] = element
                elif current != element:
                    consistent = False
                    break
            if consistent:
                rows.append(tuple(values))
        result = tuple(rows)
        memo[key] = result
        return result

    def _candidates(
        self,
        database: Database,
        memo: Dict[Tuple[str, Tuple[int, ...]], Tuple[_Row, ...]],
    ) -> Set[Element]:
        candidates: Optional[Set[Element]] = None
        for relation, pattern in self._candidate_steps:
            values = {
                row[0]
                for row in self._pattern_rows(
                    database, relation, pattern, memo
                )
            }
            candidates = (
                values if candidates is None else candidates & values
            )
            if not candidates:
                return set()
        if candidates is None:
            candidates = set(database.domain)
        return candidates

    def evaluate(
        self,
        database: Database,
        counters: Optional[PlanCounters] = None,
    ) -> FrozenSet[Element]:
        """``q(D)`` in one pass: materialize bags, semijoin up, project root."""
        if counters is not None:
            counters.evaluations += 1
        memo: Dict[Tuple[str, Tuple[int, ...]], Tuple[_Row, ...]] = {}
        candidates = self._candidates(database, memo)
        if not candidates:
            return frozenset()

        relations: List[Set[_Row]] = []
        sorted_domain: Optional[Tuple[Element, ...]] = None
        for bag in self._bags:
            rows: Set[_Row] = {(value,) for value in candidates}
            if counters is not None:
                counters.bag_relations += 1
            for step in bag.steps:
                bindings = self._pattern_rows(
                    database, step.relation, step.pattern, memo
                )
                buckets: Dict[Tuple, List[_Row]] = {}
                for binding in bindings:
                    buckets.setdefault(
                        tuple(
                            binding[i]
                            for i in step.shared_binding_positions
                        ),
                        [],
                    ).append(binding)
                joined: Set[_Row] = set()
                for row in rows:
                    key = tuple(row[i] for i in step.shared_row_positions)
                    for binding in buckets.get(key, ()):
                        joined.add(
                            row
                            + tuple(
                                binding[i]
                                for i in step.new_binding_positions
                            )
                        )
                rows = joined
                if not rows:
                    return frozenset()
            if bag.pad_count:
                # Unconstrained bag variables range over the whole domain.
                if sorted_domain is None:
                    sorted_domain = database.index.sorted_domain
                for _ in range(bag.pad_count):
                    rows = {
                        row + (element,)
                        for row in rows
                        for element in sorted_domain
                    }
            if counters is not None:
                counters.bag_rows += len(rows)
            relations.append(rows)

        # Upward semijoin pass: children reduce parents, leaves first.
        for node in reversed(self._order):
            parent_node = self._parent[node]
            if parent_node is None:
                continue
            parent_positions, child_positions = self._semijoin_positions[node]
            keys = {
                tuple(row[i] for i in child_positions)
                for row in relations[node]
            }
            surviving = {
                row
                for row in relations[parent_node]
                if tuple(row[i] for i in parent_positions) in keys
            }
            if counters is not None:
                counters.semijoins += 1
            if not surviving:
                return frozenset()
            relations[parent_node] = surviving

        root = relations[self._order[0]]
        return frozenset(row[0] for row in root)

    def __repr__(self) -> str:
        return (
            f"YannakakisPlan(bags={len(self._bags)}, "
            f"query={self.query!s})"
        )


# ----------------------------------------------------------------------
# One compiled unit per CQ
# ----------------------------------------------------------------------


class QueryPlan:
    """Everything compiled once for one CQ, reused across databases.

    ``program`` is the :class:`HomomorphismProgram` over the query's
    canonical database, seeded with its free variables — the unit the
    engine's ``selects``/``evaluate`` hot paths execute.  Structured
    (bounded-ghw) plans are compiled lazily per width bound via
    :meth:`structured` and cached on the plan, so the decomposition search
    also runs at most once per ``(query, k)``.  The vectorized program
    (numpy-bitset backend, :mod:`repro.cq.vectorized`) is compiled lazily
    via :meth:`vectorized` — compilation reads only the query, so it
    works (and caches) even when numpy is absent.
    """

    __slots__ = ("query", "program", "_structured", "_vectorized")

    def __init__(self, query: CQ, program: HomomorphismProgram) -> None:
        self.query = query
        self.program = program
        self._structured: Dict[int, Optional[YannakakisPlan]] = {}
        self._vectorized: Optional[Any] = None

    @classmethod
    def compile(cls, query: CQ) -> "QueryPlan":
        program = HomomorphismProgram.compile(
            query.canonical_database, query.free_variables
        )
        return cls(query, program)

    def structured(self, k: int) -> Optional[YannakakisPlan]:
        """The single-pass plan for width ``k``, or ``None`` if ghw > k.

        The decomposition (and the ``None`` outcome) is cached per ``k``.
        """
        if k not in self._structured:
            # Local import: repro.hypergraph.ghw imports repro.cq at load.
            from repro.hypergraph.ghw import decompose

            decomposition = decompose(self.query, k)
            self._structured[k] = (
                None
                if decomposition is None
                else YannakakisPlan(self.query, decomposition)
            )
        return self._structured[k]

    def structured_for(
        self, decomposition: TreeDecomposition
    ) -> YannakakisPlan:
        """Compile (uncached) a single-pass plan for an explicit decomposition."""
        return YannakakisPlan(self.query, decomposition)

    def vectorized(self) -> Any:
        """The compiled :class:`~repro.cq.vectorized.VectorizedProgram`.

        Compiled at most once per plan; like every plan artifact it is
        database-independent, so it survives deltas and is valid against
        any target.  numpy is only needed to *evaluate* the program.
        """
        if self._vectorized is None:
            # Local import: keeps the vectorized backend optional at the
            # module level, mirroring the lazy ghw import above.
            from repro.cq.vectorized import VectorizedProgram

            self._vectorized = VectorizedProgram.compile_query(self.query)
        return self._vectorized

    def __repr__(self) -> str:
        return f"QueryPlan({self.query!s})"
