"""Homomorphisms between databases (paper, Section 2).

A homomorphism from ``D`` to ``D'`` is a map ``h : dom(D) → dom(D')`` with
``R(h(ā)) ∈ D'`` for every fact ``R(ā) ∈ D``.  The pointed variant
``(D, ā) → (D', b̄)`` additionally requires ``h(ā) = b̄``.

The search is a backtracking constraint solver over the *facts* of the source
database: facts are ordered to maximize connectivity with already-assigned
elements, and positional-occurrence candidate sets provide a cheap
arc-consistency-style prefilter.  Deciding existence is NP-complete in
general; the instances in this library are small by design.

The prefilter reads the target's lazily-built
:class:`~repro.data.database.DatabaseIndex`, so repeated checks against the
same database never rebuild its occurrence table; pass a
:class:`SearchCounters` to tally the work actually done.  Memoization of
whole check results lives one level up, in :mod:`repro.cq.engine`.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.data.database import Database, Fact
from repro.exceptions import DatabaseError

__all__ = [
    "SearchCounters",
    "find_homomorphism",
    "has_homomorphism",
    "all_homomorphisms",
    "is_homomorphism",
    "pointed_has_homomorphism",
    "homomorphic_image",
]

Element = Any
Assignment = Dict[Element, Element]


class SearchCounters:
    """Mutable tally of homomorphism-search work.

    ``hom_checks`` counts top-level searches started; ``backtrack_nodes``
    counts candidate target facts tried (search-tree nodes expanded).  Both
    the instrumented path here and the frozen naive path in
    :mod:`repro.cq.naive` accept one, so benchmarks can compare work done,
    not just wall-clock.
    """

    __slots__ = ("hom_checks", "backtrack_nodes")

    def __init__(self) -> None:
        self.hom_checks = 0
        self.backtrack_nodes = 0

    def snapshot(self) -> Tuple[int, int]:
        return (self.hom_checks, self.backtrack_nodes)

    def __repr__(self) -> str:
        return (
            f"SearchCounters(hom_checks={self.hom_checks}, "
            f"backtrack_nodes={self.backtrack_nodes})"
        )


def _positional_candidates(
    source: Database, target: Database
) -> Optional[Dict[Element, Set[Element]]]:
    """For each source element, the targets allowed by positional occurrence.

    If a source element occurs at position ``i`` of relation ``R``, its image
    must occur at position ``i`` of some ``R``-fact of the target.  Returns
    ``None`` if some source element has no candidate at all (no homomorphism
    exists).  The target side reads the database's cached index instead of
    rescanning its facts.
    """
    target_positions = target.index.positions

    candidates: Dict[Element, Set[Element]] = {}
    for fact in source.facts:
        for index, element in enumerate(fact.arguments):
            allowed = target_positions.get((fact.relation, index))
            if allowed is None:
                return None
            if element in candidates:
                candidates[element] &= allowed
                if not candidates[element]:
                    return None
            else:
                candidates[element] = set(allowed)
    return candidates


def _order_facts(source: Database, seeded: Set[Element]) -> List[Fact]:
    """Greedy fact ordering: most already-touched elements first.

    Keeps the search connected so assignments propagate early; ties are
    broken toward facts over rarer relations deterministically.  Repr keys
    and element sets are computed once up front (decorate-sort) rather than
    inside the sort and the O(n²) selection loop; the resulting order is
    identical to the historical one.
    """
    remaining: List[Tuple[Fact, FrozenSet[Element]]] = [
        (fact, fact.elements)
        for fact in sorted(source.facts, key=repr)
    ]
    ordered: List[Fact] = []
    touched = set(seeded)
    while remaining:
        best_index = 0
        best_key: Optional[Tuple[int, int]] = None
        for index, (_, elements) in enumerate(remaining):
            overlap = sum(1 for a in elements if a in touched)
            new_elements = len(elements) - overlap
            key = (-overlap, new_elements)
            if best_key is None or key < best_key:
                best_key = key
                best_index = index
        fact, elements = remaining.pop(best_index)
        ordered.append(fact)
        touched.update(elements)
    return ordered


def all_homomorphisms(
    source: Database,
    target: Database,
    fixed: Optional[Mapping[Element, Element]] = None,
    counters: Optional[SearchCounters] = None,
) -> Iterator[Assignment]:
    """Yield every homomorphism from ``source`` to ``target`` extending ``fixed``.

    The yielded dictionaries are fresh copies covering all of ``dom(source)``
    plus any extra keys provided in ``fixed``.
    """
    if counters is not None:
        counters.hom_checks += 1
    assignment: Assignment = dict(fixed) if fixed else {}

    candidates = _positional_candidates(source, target)
    if candidates is None:
        return
    for element, image in assignment.items():
        allowed = candidates.get(element)
        if allowed is not None and image not in allowed:
            return

    facts = _order_facts(source, set(assignment))
    target_by_relation = {
        relation: target.facts_of(relation)
        for relation in source.relation_names
    }

    # Iterative depth-first search (an explicit stack: recursion depth would
    # equal the fact count, which product databases can push past Python's
    # recursion limit).  stack[level] = (next target-fact index, newly bound
    # elements at this level).
    n_facts = len(facts)
    if n_facts == 0:
        yield dict(assignment)
        return
    stack: List[Tuple[int, List[Element]]] = [(0, [])]
    while stack:
        level = len(stack) - 1
        index, bound_here = stack[-1]
        for element in bound_here:
            del assignment[element]
        bound_here.clear()
        fact = facts[level]
        options = target_by_relation[fact.relation]
        advanced = False
        while index < len(options):
            target_fact = options[index]
            index += 1
            if counters is not None:
                counters.backtrack_nodes += 1
            newly_bound: List[Element] = []
            consistent = True
            for element, image in zip(fact.arguments, target_fact.arguments):
                bound = assignment.get(element)
                if bound is not None:
                    if bound != image:
                        consistent = False
                        break
                elif image not in candidates.get(element, ()):
                    consistent = False
                    break
                else:
                    assignment[element] = image
                    newly_bound.append(element)
            if consistent:
                if level + 1 == n_facts:
                    yield dict(assignment)
                    for bound in newly_bound:
                        del assignment[bound]
                    continue  # leaf level: try the next option directly
                stack[-1] = (index, newly_bound)
                stack.append((0, []))
                advanced = True
                break
            for bound in newly_bound:
                del assignment[bound]
        if not advanced:
            stack.pop()


def find_homomorphism(
    source: Database,
    target: Database,
    fixed: Optional[Mapping[Element, Element]] = None,
    counters: Optional[SearchCounters] = None,
) -> Optional[Assignment]:
    """The first homomorphism found, or ``None`` if none exists."""
    for assignment in all_homomorphisms(source, target, fixed, counters):
        return assignment
    return None


def has_homomorphism(
    source: Database,
    target: Database,
    fixed: Optional[Mapping[Element, Element]] = None,
    counters: Optional[SearchCounters] = None,
) -> bool:
    """Whether ``source → target`` (extending ``fixed`` if given).

    This is the direct, non-memoized decision; for cached repeated checks
    go through :class:`repro.cq.engine.EvaluationEngine`.
    """
    return find_homomorphism(source, target, fixed, counters) is not None


def pointed_has_homomorphism(
    source: Database,
    source_tuple: Sequence[Element],
    target: Database,
    target_tuple: Sequence[Element],
    counters: Optional[SearchCounters] = None,
) -> bool:
    """Whether ``(D, ā) → (D', b̄)`` holds.

    Pass a :class:`SearchCounters` to make the underlying search visible
    to work tallies — pointed checks count toward ``hom_checks`` and
    ``backtrack_nodes`` exactly like unpointed ones.
    """
    if len(source_tuple) != len(target_tuple):
        raise DatabaseError(
            "pointed homomorphism requires equal-length tuples"
        )
    fixed: Assignment = {}
    for element, image in zip(source_tuple, target_tuple):
        existing = fixed.get(element)
        if existing is not None and existing != image:
            return False
        fixed[element] = image
    return has_homomorphism(source, target, fixed, counters)


def is_homomorphism(
    mapping: Mapping[Element, Element],
    source: Database,
    target: Database,
) -> bool:
    """Check that ``mapping`` is a homomorphism from ``source`` to ``target``."""
    for element in source.domain:
        if element not in mapping:
            return False
    for fact in source.facts:
        image = Fact(
            fact.relation, tuple(mapping[a] for a in fact.arguments)
        )
        if image not in target:
            return False
    return True


def homomorphic_image(
    mapping: Mapping[Element, Element], source: Database
) -> Database:
    """The image database ``h(D)`` (facts mapped through ``mapping``)."""
    return Database(
        Fact(fact.relation, tuple(mapping[a] for a in fact.arguments))
        for fact in source.facts
    )
