"""Conjunctive queries: syntax, evaluation, containment, cores, enumeration."""

from repro.cq.containment import are_equivalent, is_contained_in
from repro.cq.core import core_of
from repro.cq.engine import (
    CacheInfo,
    EngineCounters,
    EvaluationEngine,
    default_engine,
    set_default_engine,
)
from repro.cq.enumeration import (
    count_feature_queries,
    enumerate_feature_queries,
)
from repro.cq.evaluation import (
    compile_plan,
    evaluate,
    evaluate_unary,
    indicator,
    indicator_vector,
    selects,
)
from repro.cq.homomorphism import (
    SearchCounters,
    all_homomorphisms,
    find_homomorphism,
    has_homomorphism,
    homomorphic_image,
    is_homomorphism,
    pointed_has_homomorphism,
)
from repro.cq.parser import parse_cq
from repro.cq.plan import (
    HomomorphismProgram,
    PlanCounters,
    QueryPlan,
    YannakakisPlan,
)
from repro.cq.structured_evaluation import (
    evaluate_ghw,
    evaluate_with_decomposition,
)
from repro.cq.query import CQ
from repro.cq.terms import Atom, Variable

__all__ = [
    "CQ",
    "Atom",
    "Variable",
    "CacheInfo",
    "EngineCounters",
    "EvaluationEngine",
    "SearchCounters",
    "default_engine",
    "set_default_engine",
    "parse_cq",
    "HomomorphismProgram",
    "PlanCounters",
    "QueryPlan",
    "YannakakisPlan",
    "compile_plan",
    "evaluate",
    "evaluate_unary",
    "evaluate_ghw",
    "evaluate_with_decomposition",
    "selects",
    "indicator",
    "indicator_vector",
    "find_homomorphism",
    "has_homomorphism",
    "all_homomorphisms",
    "is_homomorphism",
    "pointed_has_homomorphism",
    "homomorphic_image",
    "is_contained_in",
    "are_equivalent",
    "core_of",
    "enumerate_feature_queries",
    "count_feature_queries",
]
