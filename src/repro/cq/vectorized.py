"""Vectorized (numpy-bitset) CQ evaluation backend.

The pure-Python hot path decides one homomorphism at a time: per-check
candidate derivation over Python sets, then a backtracking search that
touches one target fact per node.  For the paper's workloads — a fixed
statistic evaluated over many databases, filling the (statistic ×
database) indicator matrix — almost all of that work is data-parallel
across target facts.  This module batches it:

- per-variable candidate sets are packed ``uint64`` bitset rows
  (:class:`~repro.data.bitset.BitsetIndex`), intersected with
  ``np.bitwise_and`` over whole words;
- the semijoin pruning pass tests entire fact-table columns against the
  candidate bitsets at once (one boolean mask per atom instead of one
  hash probe per search node), iterated to a fixpoint — the vectorized
  analogue of the Yannakakis upward pass;
- the final join runs in a precompiled greedy atom order as a sequence
  of sort-merge joins over dense integer keys, producing all satisfying
  assignments of one (query, database) pair in a handful of array ops.

A :class:`VectorizedProgram` is compiled once per query (or per hom-check
source database) and — like :class:`~repro.cq.plan.QueryPlan` — is
database-independent: compilation reads only the query structure, never a
target's facts, so numpy is *not* needed to compile, only to evaluate.
Evaluation raises :class:`VectorizedFallback` whenever it cannot proceed
(numpy absent, an unsupported shape, or an intermediate join exceeding
``max_cells``); the engine catches it, records the reason, and reruns the
check on the pure-Python path, so results are never silently wrong — the
differential harness in ``tests/vectorized`` holds the two backends
bit-identical.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.cq.query import CQ
from repro.data import bitset as bitset_backend
from repro.data.database import Database
from repro.exceptions import QueryError

__all__ = [
    "DEFAULT_MAX_CELLS",
    "VectorizedFallback",
    "VectorizedProgram",
]

Element = Any

#: Default cap on ``rows × columns`` of any intermediate join table.  A
#: join exceeding it raises :class:`VectorizedFallback` so a pathological
#: query degrades to the (memory-lean) backtracking path instead of
#: materializing a huge dense array.
DEFAULT_MAX_CELLS = 2_000_000

#: Safety cap on semijoin fixpoint rounds (the loop is monotone and
#: terminates on its own; the cap guards against future edits breaking
#: monotonicity, not against any known input).
_MAX_SWEEP_ROUNDS = 64


class VectorizedFallback(Exception):
    """The vectorized backend cannot evaluate this instance; reason in args.

    Deliberately *not* a :class:`~repro.exceptions.ReproError`: it never
    escapes to users.  The engine catches it, notes the reason in
    :meth:`~repro.cq.engine.EvaluationEngine.backend_info`, and falls back
    to the pure-Python path.
    """


class VectorizedProgram:
    """One query (or hom-check source), compiled for batched evaluation.

    ``variables`` are the source's variables (for a CQ: its variables,
    free first; for a database source: its domain elements) in a fixed
    deterministic order.  ``atoms`` hold, per source atom/fact, the
    relation name and the variable slot of each argument position.
    ``signatures`` give each variable's occurrence positions — the keys
    whose occurrence bitsets intersect to its initial candidate set.
    ``order`` is the greedy join order: start at the atom covering the
    most free variables, then repeatedly take the atom sharing the most
    variables with everything joined so far (ties by atom index), which
    keeps intermediate tables narrow on the tree-shaped feature queries
    the paper's languages generate.
    """

    __slots__ = ("free", "variables", "atoms", "signatures", "order")

    def __init__(
        self,
        free: Tuple[Element, ...],
        variables: Tuple[Element, ...],
        atoms: Tuple[Tuple[str, Tuple[int, ...]], ...],
    ) -> None:
        self.free = free
        self.variables = variables
        self.atoms = atoms

        signatures: List[Tuple[Tuple[str, int], ...]] = []
        occurrence: Dict[int, List[Tuple[str, int]]] = {
            slot: [] for slot in range(len(variables))
        }
        for relation, slots in atoms:
            for position, slot in enumerate(slots):
                occurrence[slot].append((relation, position))
        for slot in range(len(variables)):
            signatures.append(tuple(sorted(set(occurrence[slot]))))
        self.signatures: Tuple[Tuple[Tuple[str, int], ...], ...] = tuple(
            signatures
        )
        self.order = self._join_order()

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------

    @classmethod
    def compile_query(cls, query: CQ) -> "VectorizedProgram":
        """Compile a CQ: variables are its variables, atoms its atoms.

        Raises :class:`~repro.exceptions.QueryError` for a free variable
        occurring in no atom (same contract as the engine's candidate
        derivation: no positional constraint means no sound candidate
        set).
        """
        free = tuple(query.free_variables)
        seen: Dict[Element, int] = {}
        variables: List[Element] = []
        for variable in free:
            if variable not in seen:
                seen[variable] = len(variables)
                variables.append(variable)
        atoms: List[Tuple[str, Tuple[int, ...]]] = []
        for atom in query.atoms:
            slots = []
            for argument in atom.arguments:
                if argument not in seen:
                    seen[argument] = len(variables)
                    variables.append(argument)
                slots.append(seen[argument])
            atoms.append((atom.relation, tuple(slots)))
        covered = {slot for _, slots in atoms for slot in slots}
        for variable in free:
            if seen[variable] not in covered:
                raise QueryError(
                    f"free variable {variable} does not occur in any atom"
                )
        return cls(free, tuple(variables), tuple(atoms))

    @classmethod
    def compile_database(cls, source: Database) -> "VectorizedProgram":
        """Compile a hom-check source: variables are its domain elements.

        The program decides ``source → target`` (extending a ``fixed``
        assignment) via :meth:`decide`; there are no free variables.
        """
        seen: Dict[Element, int] = {}
        variables: List[Element] = []
        atoms: List[Tuple[str, Tuple[int, ...]]] = []
        for fact in source:  # sorted iteration: deterministic compile
            slots = []
            for element in fact.arguments:
                if element not in seen:
                    seen[element] = len(variables)
                    variables.append(element)
                slots.append(seen[element])
            atoms.append((fact.relation, tuple(slots)))
        return cls((), tuple(variables), tuple(atoms))

    def _join_order(self) -> Tuple[int, ...]:
        if not self.atoms:
            return ()
        free_slots = {
            slot
            for slot in range(len(self.free))
            # self.free leads self.variables, so slots 0..len(free)-1.
        }
        remaining = list(range(len(self.atoms)))
        first = max(
            remaining,
            key=lambda a: (
                len(free_slots & set(self.atoms[a][1])),
                -a,
            ),
        )
        order = [first]
        remaining.remove(first)
        bound = set(self.atoms[first][1])
        while remaining:
            best = max(
                remaining,
                key=lambda a: (len(bound & set(self.atoms[a][1])), -a),
            )
            order.append(best)
            remaining.remove(best)
            bound |= set(self.atoms[best][1])
        return tuple(order)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def _solve(
        self,
        database: Database,
        fixed: Optional[Mapping[Element, Element]],
        max_cells: int,
    ) -> Optional[Tuple[List[int], Any]]:
        """All satisfying assignments as ``(column slots, id table)``.

        Returns ``None`` when the instance is unsatisfiable.  Raises
        :class:`VectorizedFallback` when this backend cannot decide it.
        """
        if not bitset_backend.HAVE_NUMPY:
            raise VectorizedFallback("numpy unavailable")
        np = bitset_backend.np

        if not self.atoms:
            # No constraints at all: the (empty or fixed-only) assignment
            # is always a homomorphism.
            return ([], np.zeros((1, 0), dtype=np.int64))

        bits = database.index.bitsets()
        n_elements = bits.n_elements

        # 1. Initial candidate bitsets: intersection of occurrence rows
        # over each variable's signature.
        candidates: List[Any] = []
        for signature in self.signatures:
            words: Optional[Any] = None
            for key in signature:
                occupied = bits.occurrence_bits.get(key)
                if occupied is None:
                    return None
                words = occupied.copy() if words is None else words & occupied
            if words is None:
                # Every variable occurs in an atom by construction, but a
                # slot can be unreferenced after compile_database of a
                # degenerate source; treat as unconstrained.
                words = np.full(
                    bits.n_words, np.uint64(0xFFFFFFFFFFFFFFFF), np.uint64
                )
                if n_elements % bitset_backend.WORD_BITS and bits.n_words:
                    tail = n_elements % bitset_backend.WORD_BITS
                    words[-1] = np.uint64((1 << tail) - 1)
            if not words.any():
                return None
            candidates.append(words)

        # 2. Seed the fixed assignment.  Keys outside the source's
        # variables are carried through unconstrained (matching the
        # backtracking search); an image outside the target domain or
        # outside the variable's candidates is immediately unsatisfiable.
        if fixed:
            slot_of = {
                variable: slot
                for slot, variable in enumerate(self.variables)
            }
            for variable, image in fixed.items():
                slot = slot_of.get(variable)
                if slot is None:
                    continue
                image_id = bits.element_id.get(image)
                if image_id is None:
                    return None
                candidates[slot] = candidates[slot] & bitset_backend.pack_ids(
                    [image_id], n_elements
                )
                if not candidates[slot].any():
                    return None

        # 3. Per-atom fact tables with within-atom equality applied once.
        tables: List[Any] = []
        for relation, slots in self.atoms:
            rows = bits.fact_tables.get(relation)
            if rows is None:
                return None
            if rows.shape[1] != len(slots):
                # The backtracking search has its own (lenient) behavior
                # for arity-mismatched atoms; defer to it.
                raise VectorizedFallback(
                    f"atom over {relation!r} has arity {len(slots)}, "
                    f"facts have arity {rows.shape[1]}"
                )
            first_at: Dict[int, int] = {}
            mask = np.ones(len(rows), dtype=bool)
            for position, slot in enumerate(slots):
                if slot in first_at:
                    mask &= rows[:, position] == rows[:, first_at[slot]]
                else:
                    first_at[slot] = position
            rows = rows[mask]
            if not len(rows):
                return None
            tables.append(rows)

        # 4. Semijoin sweep to a fixpoint: drop facts incompatible with
        # the candidate bitsets, shrink candidates to the values that
        # survive somewhere, repeat.  Monotone decreasing, so it
        # terminates; the round cap is a pure safety net.
        for _ in range(_MAX_SWEEP_ROUNDS):
            changed = False
            for index, (relation, slots) in enumerate(self.atoms):
                rows = tables[index]
                alive = np.ones(len(rows), dtype=bool)
                for position, slot in enumerate(slots):
                    alive &= bitset_backend.bit_test(
                        candidates[slot], rows[:, position]
                    )
                if not alive.all():
                    rows = rows[alive]
                    if not len(rows):
                        return None
                    tables[index] = rows
                    changed = True
                seen_slots = set()
                for position, slot in enumerate(slots):
                    if slot in seen_slots:
                        continue
                    seen_slots.add(slot)
                    surviving = bitset_backend.pack_ids(
                        np.unique(rows[:, position]), n_elements
                    )
                    narrowed = candidates[slot] & surviving
                    if not np.array_equal(narrowed, candidates[slot]):
                        if not narrowed.any():
                            return None
                        candidates[slot] = narrowed
                        changed = True
            if not changed:
                break

        # 5. Join the pruned tables in the precompiled order.  Tables are
        # (rows × distinct-slot) id matrices; joins run over dense keys
        # recompressed per column, so multi-column keys never overflow.
        def atom_columns(index: int) -> Tuple[List[int], Any]:
            _, slots = self.atoms[index]
            columns: List[int] = []
            keep: List[int] = []
            for position, slot in enumerate(slots):
                if slot not in columns:
                    columns.append(slot)
                    keep.append(position)
            return columns, tables[index][:, keep]

        columns, table = atom_columns(self.order[0])
        for index in self.order[1:]:
            right_columns, right = atom_columns(index)
            shared = [slot for slot in right_columns if slot in columns]
            fresh = [
                position
                for position, slot in enumerate(right_columns)
                if slot not in columns
            ]
            if shared:
                left_keys = np.zeros(len(table), dtype=np.int64)
                right_keys = np.zeros(len(right), dtype=np.int64)
                for slot in shared:
                    left_column = table[:, columns.index(slot)]
                    right_column = right[:, right_columns.index(slot)]
                    combined = np.concatenate(
                        [
                            left_keys * n_elements + left_column,
                            right_keys * n_elements + right_column,
                        ]
                    )
                    _, inverse = np.unique(combined, return_inverse=True)
                    left_keys = inverse[: len(table)].astype(np.int64)
                    right_keys = inverse[len(table):].astype(np.int64)
                right_order = np.argsort(right_keys, kind="stable")
                right_sorted = right_keys[right_order]
                starts = np.searchsorted(right_sorted, left_keys, "left")
                ends = np.searchsorted(right_sorted, left_keys, "right")
                counts = ends - starts
                total = int(counts.sum())
                width = len(columns) + len(fresh)
                if total * max(width, 1) > max_cells:
                    raise VectorizedFallback(
                        f"join of {total} x {width} cells exceeds "
                        f"max_cells={max_cells}"
                    )
                left_index = np.repeat(np.arange(len(table)), counts)
                group_starts = np.repeat(starts, counts)
                group_offsets = np.arange(total) - np.repeat(
                    np.cumsum(counts) - counts, counts
                )
                right_index = right_order[group_starts + group_offsets]
            else:
                total = len(table) * len(right)
                width = len(columns) + len(fresh)
                if total * max(width, 1) > max_cells:
                    raise VectorizedFallback(
                        f"cross product of {total} x {width} cells "
                        f"exceeds max_cells={max_cells}"
                    )
                left_index = np.repeat(np.arange(len(table)), len(right))
                right_index = np.tile(np.arange(len(right)), len(table))
            table = np.concatenate(
                [table[left_index], right[right_index][:, fresh]], axis=1
            )
            columns.extend(
                slot for slot in right_columns if slot not in columns
            )
            if not len(table):
                return None
        return (columns, table)

    def evaluate(
        self,
        database: Database,
        fixed: Optional[Mapping[Element, Element]] = None,
        max_cells: int = DEFAULT_MAX_CELLS,
    ) -> FrozenSet[Tuple[Element, ...]]:
        """``q(D)`` (extending ``fixed``): tuples over the free variables."""
        solved = self._solve(database, fixed, max_cells)
        if solved is None:
            return frozenset()
        columns, table = solved
        if not len(table):
            return frozenset()
        if not self.free:
            return frozenset({()})
        np = bitset_backend.np
        free_slots = list(range(len(self.free)))
        projection = table[:, [columns.index(slot) for slot in free_slots]]
        rows = np.unique(projection, axis=0)
        elements = database.index.bitsets().elements
        return frozenset(
            tuple(elements[value] for value in row) for row in rows
        )

    def decide(
        self,
        database: Database,
        fixed: Optional[Mapping[Element, Element]] = None,
        max_cells: int = DEFAULT_MAX_CELLS,
    ) -> bool:
        """Whether a homomorphism into ``database`` extending ``fixed`` exists."""
        solved = self._solve(database, fixed, max_cells)
        return solved is not None and len(solved[1]) > 0

    def __repr__(self) -> str:
        return (
            f"VectorizedProgram(variables={len(self.variables)}, "
            f"atoms={len(self.atoms)}, free={len(self.free)})"
        )
