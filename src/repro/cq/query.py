"""Conjunctive queries and their canonical databases (paper, Section 2).

A CQ over a schema σ is a formula ``∃ȳ (R1(x̄1) ∧ ... ∧ Rn(x̄n))`` whose
atoms mention variables only (no constants).  The *canonical database* of a
CQ is the database whose facts are precisely the atoms, variables playing the
role of universe elements; evaluation is defined through homomorphisms from
the canonical database.

A *feature query* in the paper is a unary CQ ``q(x)`` that always contains
the entity atom ``η(x)``; :meth:`CQ.feature` enforces this convention.
"""

from __future__ import annotations

import itertools
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.cq.terms import Atom, Variable
from repro.data.database import Database, Fact
from repro.data.schema import ENTITY_SYMBOL, RelationSymbol, Schema
from repro.exceptions import QueryError

__all__ = ["CQ"]


class CQ:
    """An immutable conjunctive query without constants.

    Parameters
    ----------
    atoms:
        The atoms of the body; at least one.
    free_variables:
        The tuple ``x̄`` of answer variables.  Every free variable must occur
        in some atom.  Feature queries are the unary case.
    """

    __slots__ = (
        "_atoms",
        "_free",
        "_variables",
        "_canonical",
        "_hash",
        "_digest",
    )

    def __init__(
        self,
        atoms: Iterable[Atom],
        free_variables: Sequence[Variable],
    ) -> None:
        atom_tuple = tuple(sorted(set(atoms)))
        if not atom_tuple:
            raise QueryError("a CQ must have at least one atom")
        free = tuple(free_variables)
        if len(set(free)) != len(free):
            raise QueryError("free variables must be distinct")
        variables = frozenset(
            variable for atom in atom_tuple for variable in atom.arguments
        )
        for variable in free:
            if variable not in variables:
                raise QueryError(
                    f"free variable {variable} does not occur in any atom"
                )
        self._atoms = atom_tuple
        self._free = free
        self._variables = variables
        self._canonical: Optional[Database] = None
        self._hash: Optional[int] = None
        self._digest: Optional[str] = None

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------

    @classmethod
    def feature(
        cls,
        atoms: Iterable[Atom],
        free_variable: Variable = Variable("x"),
        entity_symbol: str = ENTITY_SYMBOL,
    ) -> "CQ":
        """A unary feature query ``q(x)`` with the ``η(x)`` atom enforced."""
        atom_list = list(atoms)
        entity_atom = Atom(entity_symbol, (free_variable,))
        if entity_atom not in atom_list:
            atom_list.append(entity_atom)
        return cls(atom_list, (free_variable,))

    @classmethod
    def entity_only(
        cls,
        free_variable: Variable = Variable("x"),
        entity_symbol: str = ENTITY_SYMBOL,
    ) -> "CQ":
        """The trivial feature query ``q(x) := η(x)`` selecting all entities."""
        return cls.feature((), free_variable, entity_symbol)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def atoms(self) -> Tuple[Atom, ...]:
        return self._atoms

    @property
    def free_variables(self) -> Tuple[Variable, ...]:
        return self._free

    @property
    def free_variable(self) -> Variable:
        """The unique free variable of a unary CQ."""
        if len(self._free) != 1:
            raise QueryError(
                f"expected a unary CQ, got {len(self._free)} free variables"
            )
        return self._free[0]

    @property
    def variables(self) -> FrozenSet[Variable]:
        return self._variables

    @property
    def existential_variables(self) -> FrozenSet[Variable]:
        return self._variables - frozenset(self._free)

    @property
    def is_unary(self) -> bool:
        return len(self._free) == 1

    def atom_count(self, entity_symbol: str = ENTITY_SYMBOL) -> int:
        """Number of atoms, *not* counting the entity atom ``η(x)``.

        This matches the paper's convention for the class ``CQ[m]``.
        """
        entity_atoms = tuple(
            Atom(entity_symbol, (v,)) for v in self._free
        )
        return sum(1 for atom in self._atoms if atom not in entity_atoms)

    def max_variable_occurrences(
        self, entity_symbol: str = ENTITY_SYMBOL
    ) -> int:
        """Maximum occurrence count of any variable across non-entity atoms.

        This is the ``p`` of the class ``CQ[m, p]``.
        """
        entity_atoms = {Atom(entity_symbol, (v,)) for v in self._free}
        counts: Dict[Variable, int] = {}
        for atom in self._atoms:
            if atom in entity_atoms:
                continue
            for variable in atom.arguments:
                counts[variable] = counts.get(variable, 0) + 1
        return max(counts.values(), default=0)

    def mentioned_relations(self) -> FrozenSet[str]:
        return frozenset(atom.relation for atom in self._atoms)

    def inferred_schema(self) -> Schema:
        """The minimal schema over which this query is well-formed."""
        return Schema(
            RelationSymbol(atom.relation, atom.arity) for atom in self._atoms
        )

    # ------------------------------------------------------------------
    # Canonical database (Section 2)
    # ------------------------------------------------------------------

    @property
    def canonical_database(self) -> Database:
        """``D_q``: the atoms of q viewed as facts over the variables."""
        if self._canonical is None:
            self._canonical = Database(
                Fact(atom.relation, atom.arguments) for atom in self._atoms
            )
        return self._canonical

    # ------------------------------------------------------------------
    # Structural transformations
    # ------------------------------------------------------------------

    def rename_variables(
        self, mapping: Dict[Variable, Variable]
    ) -> "CQ":
        """Apply a variable renaming (must be injective on the variables)."""
        image = [mapping.get(v, v) for v in self._variables]
        if len(set(image)) != len(image):
            raise QueryError("variable renaming must be injective")
        return CQ(
            (
                Atom(
                    atom.relation,
                    tuple(mapping.get(v, v) for v in atom.arguments),
                )
                for atom in self._atoms
            ),
            tuple(mapping.get(v, v) for v in self._free),
        )

    def conjoin(self, other: "CQ") -> "CQ":
        """The conjunction of two CQs sharing their free variables.

        Existential variables of ``other`` are renamed apart automatically.
        Used in the proof of Lemma 5.4 (``q_e := ∧ q_e^{e'}``).
        """
        if self._free != other._free:
            raise QueryError(
                "conjoin requires identical free-variable tuples"
            )
        taken = {v.name for v in self._variables}
        renaming: Dict[Variable, Variable] = {}
        counter = itertools.count()
        for variable in sorted(other.existential_variables):
            if variable.name in taken:
                while True:
                    candidate = Variable(f"{variable.name}_{next(counter)}")
                    if candidate.name not in taken:
                        break
                renaming[variable] = candidate
                taken.add(candidate.name)
            else:
                taken.add(variable.name)
        other_renamed = other.rename_variables(renaming) if renaming else other
        return CQ(self._atoms + other_renamed.atoms, self._free)

    def _renamed_by_occurrence(self, prefix: str) -> "CQ":
        mapping: Dict[Variable, Variable] = {}
        for index, variable in enumerate(self._free):
            mapping[variable] = Variable(f"x{index}" if len(self._free) > 1
                                         else "x")
        counter = itertools.count()
        for atom in self._atoms:
            for variable in atom.arguments:
                if variable not in mapping:
                    mapping[variable] = Variable(f"{prefix}{next(counter)}")
        return self.rename_variables(mapping)

    def standardized(self, prefix: str = "v") -> "CQ":
        """Rename variables canonically: x (free) and v0, v1, ... (bound).

        Existential variables are numbered by first occurrence in the
        sorted atom order; because renaming can itself reorder the atoms,
        the renaming is iterated until it stabilizes (picking the
        lexicographically least member if the iteration cycles), which
        makes the operation idempotent.
        """
        seen: Dict["CQ", int] = {}
        current = self
        sequence = []
        while current not in seen:
            seen[current] = len(sequence)
            sequence.append(current)
            current = current._renamed_by_occurrence(prefix)
        cycle = sequence[seen[current]:]
        return min(cycle, key=str)

    # ------------------------------------------------------------------
    # Canonical form for isomorphism-level deduplication
    # ------------------------------------------------------------------

    def canonical_form(self) -> Tuple:
        """A hashable form invariant under renaming of existential variables.

        Computed by brute-force minimization over orderings of the
        existential variables; intended for small queries (the enumeration
        use case, Section 4).  Two CQs have the same canonical form iff they
        are equal up to renaming of existential variables.
        """
        existentials = sorted(self.existential_variables)
        free_index = {v: ("F", i) for i, v in enumerate(self._free)}
        if len(existentials) > 8:
            raise QueryError(
                "canonical_form is brute-force and limited to 8 existential "
                f"variables, got {len(existentials)}"
            )
        best: Optional[Tuple] = None
        for permutation in itertools.permutations(range(len(existentials))):
            naming = dict(free_index)
            for position, variable in zip(permutation, existentials):
                naming[variable] = ("E", position)
            form = tuple(
                sorted(
                    (atom.relation, tuple(naming[v] for v in atom.arguments))
                    for atom in self._atoms
                )
            )
            if best is None or form < best:
                best = form
        assert best is not None
        return (len(self._free), best)

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CQ):
            return NotImplemented
        return self._atoms == other._atoms and self._free == other._free

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._atoms, self._free))
        return self._hash

    def digest(self) -> str:
        """``sha256:<hex>`` content hash of the query, cached per instance.

        Hashes the canonical rule text (``str(self)``; atoms are sorted at
        construction), so a query and its parsed round-trip share a
        digest.  The query half of the warm-state store's plan and memo
        keys (:mod:`repro.store`); scheme shared with artifact checksums
        via :mod:`repro.data.digest`.
        """
        if self._digest is None:
            from repro.data.digest import cq_digest

            self._digest = cq_digest(self)
        return self._digest

    def __getstate__(self) -> Tuple[Tuple[Atom, ...], Tuple[Variable, ...]]:
        """Pickle the atoms and free variables, not the lazy caches.

        The canonical database (itself holding an index) is rebuilt on
        demand after unpickling, keeping shard payloads
        (:mod:`repro.runtime`) lean.
        """
        return (self._atoms, self._free)

    def __setstate__(
        self, state: Tuple[Tuple[Atom, ...], Tuple[Variable, ...]]
    ) -> None:
        atoms, free = state
        self.__init__(atoms, free)  # type: ignore[misc]

    def __repr__(self) -> str:
        return f"CQ({self})"

    def __str__(self) -> str:
        head_inner = ", ".join(str(v) for v in self._free)
        body = ", ".join(str(atom) for atom in self._atoms)
        return f"q({head_inner}) :- {body}"

    def __len__(self) -> int:
        return len(self._atoms)
