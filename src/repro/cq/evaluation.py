"""Evaluation of conjunctive queries over databases (paper, Section 2).

``q(D)`` is the set of tuples ``ā`` with ``(D_q, x̄) → (D, ā)``.  For unary
queries the result is exposed as a set of elements, and the *indicator
function* ``1_{q(D)} : η(D) → {1, -1}`` of the paper is provided directly.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.cq.homomorphism import has_homomorphism
from repro.cq.query import CQ
from repro.data.database import Database
from repro.exceptions import QueryError

__all__ = [
    "evaluate",
    "evaluate_unary",
    "selects",
    "indicator",
    "indicator_vector",
]

Element = Any


def _free_variable_candidates(
    query: CQ, database: Database
) -> List[Set[Element]]:
    """Cheap per-free-variable candidate sets from positional occurrence."""
    positions: Dict[Tuple[str, int], Set[Element]] = {}
    for fact in database.facts:
        for index, element in enumerate(fact.arguments):
            positions.setdefault((fact.relation, index), set()).add(element)

    candidate_sets: List[Set[Element]] = []
    for variable in query.free_variables:
        candidates: Optional[Set[Element]] = None
        for atom in query.atoms:
            for index, argument in enumerate(atom.arguments):
                if argument != variable:
                    continue
                allowed = positions.get((atom.relation, index), set())
                candidates = (
                    set(allowed)
                    if candidates is None
                    else candidates & allowed
                )
        candidate_sets.append(candidates if candidates is not None else set())
    return candidate_sets


def evaluate(query: CQ, database: Database) -> FrozenSet[Tuple[Element, ...]]:
    """``q(D)`` as a set of tuples over ``dom(D)``.

    Implemented as one pointed homomorphism check per candidate assignment of
    the free variables; candidates are pre-filtered by positional occurrence,
    so unary feature queries only ever test entities.
    """
    candidate_sets = _free_variable_candidates(query, database)
    if any(not candidates for candidates in candidate_sets):
        return frozenset()

    canonical = query.canonical_database
    free = query.free_variables
    results: Set[Tuple[Element, ...]] = set()

    def assign(index: int, fixed: Dict[Any, Element]) -> None:
        if index == len(free):
            if has_homomorphism(canonical, database, fixed):
                results.add(tuple(fixed[v] for v in free))
            return
        variable = free[index]
        for value in sorted(candidate_sets[index], key=repr):
            previous = fixed.get(variable)
            if previous is not None and previous != value:
                continue
            fixed[variable] = value
            assign(index + 1, fixed)
            if previous is None:
                del fixed[variable]

    assign(0, {})
    return frozenset(results)


def evaluate_unary(query: CQ, database: Database) -> FrozenSet[Element]:
    """``q(D)`` for a unary query, as a set of elements (paper convention)."""
    if not query.is_unary:
        raise QueryError("evaluate_unary requires a unary CQ")
    return frozenset(row[0] for row in evaluate(query, database))


def selects(query: CQ, database: Database, element: Element) -> bool:
    """Whether ``element ∈ q(D)`` for a unary query (single pointed check)."""
    if not query.is_unary:
        raise QueryError("selects requires a unary CQ")
    return has_homomorphism(
        query.canonical_database,
        database,
        {query.free_variable: element},
    )


def indicator(query: CQ, database: Database, element: Element) -> int:
    """The paper's ``1_{q(D)}(e)``: +1 if selected, -1 otherwise."""
    return 1 if selects(query, database, element) else -1


def indicator_vector(
    queries: Iterable[CQ], database: Database, element: Element
) -> Tuple[int, ...]:
    """``Π^D(e)`` for the statistic given as an iterable of feature queries."""
    return tuple(indicator(query, database, element) for query in queries)
