"""Evaluation of conjunctive queries over databases (paper, Section 2).

``q(D)`` is the set of tuples ``ā`` with ``(D_q, x̄) → (D, ā)``.  For unary
queries the result is exposed as a set of elements, and the *indicator
function* ``1_{q(D)} : η(D) → {1, -1}`` of the paper is provided directly.

These module-level functions are thin compatible wrappers over the
process-wide :class:`~repro.cq.engine.EvaluationEngine`, which attaches a
lazily-built index to each database and memoizes pointed homomorphism
checks; pass ``engine=`` to use a private engine (e.g. with its own cache
bounds).  The uncached reference implementations live in
:mod:`repro.cq.naive`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, FrozenSet, Iterable, Optional, Tuple

from repro.cq.engine import EvaluationEngine, default_engine
from repro.cq.query import CQ
from repro.data.database import Database

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.cq.plan import QueryPlan

__all__ = [
    "evaluate",
    "evaluate_unary",
    "selects",
    "indicator",
    "indicator_vector",
    "compile_plan",
]

Element = Any


def evaluate(
    query: CQ,
    database: Database,
    engine: Optional[EvaluationEngine] = None,
) -> FrozenSet[Tuple[Element, ...]]:
    """``q(D)`` as a set of tuples over ``dom(D)``.

    Implemented as one memoized pointed homomorphism check per candidate
    assignment of the free variables; candidates are pre-filtered by the
    database's positional-occurrence index, so unary feature queries only
    ever test entities.
    """
    return (engine or default_engine()).evaluate(query, database)


def evaluate_unary(
    query: CQ,
    database: Database,
    engine: Optional[EvaluationEngine] = None,
) -> FrozenSet[Element]:
    """``q(D)`` for a unary query, as a set of elements (paper convention)."""
    return (engine or default_engine()).evaluate_unary(query, database)


def selects(
    query: CQ,
    database: Database,
    element: Element,
    engine: Optional[EvaluationEngine] = None,
) -> bool:
    """Whether ``element ∈ q(D)`` for a unary query (single pointed check)."""
    return (engine or default_engine()).selects(query, database, element)


def indicator(
    query: CQ,
    database: Database,
    element: Element,
    engine: Optional[EvaluationEngine] = None,
) -> int:
    """The paper's ``1_{q(D)}(e)``: +1 if selected, -1 otherwise."""
    return (engine or default_engine()).indicator(query, database, element)


def indicator_vector(
    queries: Iterable[CQ],
    database: Database,
    element: Element,
    engine: Optional[EvaluationEngine] = None,
) -> Tuple[int, ...]:
    """``Π^D(e)`` for the statistic given as an iterable of feature queries."""
    return (engine or default_engine()).indicator_vector(
        queries, database, element
    )


def compile_plan(
    query: CQ,
    engine: Optional[EvaluationEngine] = None,
) -> "QueryPlan":
    """The engine's compiled (and cached) plan for ``query``.

    Compiling is idempotent — the engine caches one
    :class:`~repro.cq.plan.QueryPlan` per query — so this doubles as an
    explicit warm-up hook: compile a statistic's plans up front and every
    later ``selects``/``evaluate`` call starts on the hot path.
    """
    return (engine or default_engine()).plan_for(query)
