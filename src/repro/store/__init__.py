"""Disk-backed content-addressed warm-state store (plans, answers, models).

The persistence tier that turns the library's per-process wins — compiled
:class:`~repro.cq.plan.QueryPlan`\\ s, memoized query answers, validated
model artifacts — into durable ones: a process restarting against the
same store root starts *hot*.

- :class:`ContentStore` — the object layer: sharded JSON envelopes keyed
  by SHA-256 digests of canonical key payloads, atomic write-then-rename,
  checksum-verified reads with quarantine-and-recompute on corruption,
  versioned envelopes with a forward-compatibility gate, and LRU GC.
- :class:`WarmStore` — the engine-facing facade: plan cache (keyed by
  query digest × backend × format version) and memo cache (keyed by query
  digest × database digest), with hit/miss accounting and relation-scoped
  invalidation mirroring ``apply_delta``.
- :class:`ModelStore` — the persistent model registry backend: publish /
  enumerate / load / default-pin model versions, making the gateway's
  rollout and rollback survive restarts.
- :func:`open_store` — normalizes the ``store=`` knob every subsystem
  threads through (path string, :class:`ContentStore`, or
  :class:`WarmStore`).

Everything is stdlib-only and keyed by the same canonical-dump + SHA-256
discipline as model-artifact checksums (:mod:`repro.data.digest`).
"""

from repro.store.codec import (
    ANSWER_FORMAT,
    PLAN_FORMAT,
    CodecError,
    UnencodableAnswer,
    decode_answer,
    decode_plan,
    encode_answer,
    encode_plan,
)
from repro.store.content import (
    STORE_FORMAT,
    STORE_VERSION,
    ContentStore,
    StoreEntry,
)
from repro.store.models import ModelStore
from repro.store.warm import WarmStore, open_store

__all__ = [
    "STORE_FORMAT",
    "STORE_VERSION",
    "PLAN_FORMAT",
    "ANSWER_FORMAT",
    "ContentStore",
    "StoreEntry",
    "WarmStore",
    "ModelStore",
    "open_store",
    "CodecError",
    "UnencodableAnswer",
    "encode_plan",
    "decode_plan",
    "encode_answer",
    "decode_answer",
]
