"""The content-addressed object store under a store root directory.

Layout (everything is plain JSON — inspectable, diffable, greppable)::

    <root>/meta.json                         store format marker + version
    <root>/objects/<kind>/<hh>/<digest>.json one envelope per entry
    <root>/quarantine/<name>.json            corrupt entries, moved aside

Entries are keyed by the SHA-256 digest of their canonical *key payload*
(:func:`repro.data.digest.digest_hex` over ``{"kind": ..., "key": ...}``),
sharded by the first two hex digits so no directory grows unbounded.  Each
entry file is a versioned **envelope** embedding its kind, key, payload,
and a checksum over the rest — the same canonical-dump scheme model
artifacts use.

Durability and integrity rules:

- **Atomic writes.**  Envelopes are written to a temp file in the target
  directory and ``os.replace``\\ d into place, so readers never observe a
  torn entry under concurrent writers (two processes racing the same key
  write byte-identical envelopes; either replace wins).
- **Verified reads.**  Every read re-hashes the envelope.  A torn,
  truncated, tampered, or mis-keyed entry is *quarantined* (moved into
  ``quarantine/``, never deleted silently, never served) and reported as
  a miss — the caller recomputes and the next put heals the entry.
- **Version gates.**  A store (or single envelope) written by a *newer*
  library version raises :class:`~repro.exceptions.StoreError` instead of
  being misread; older versions within the supported range load normally.
- **LRU GC.**  Reads bump the entry file's mtime, so ``gc`` under an
  entry-count or byte cap evicts least-recently-used entries first.
"""

from __future__ import annotations

import itertools
import json
import os
from typing import Any, Dict, Iterator, List, NamedTuple, Optional, Tuple

from repro.data.digest import canonical_dump, checksum, digest_hex
from repro.exceptions import StoreError

__all__ = ["STORE_FORMAT", "STORE_VERSION", "ContentStore", "StoreEntry"]

#: Magic format tag of the store root and of every envelope.
STORE_FORMAT = "repro-store"

#: Current (and only) store format version.
STORE_VERSION = 1

_ENVELOPE_KEYS = frozenset(("format", "version", "kind", "key", "payload",
                            "checksum"))

#: Distinguishes concurrent temp files of one process; the pid
#: distinguishes processes.
_tmp_counter = itertools.count()


class StoreEntry(NamedTuple):
    """One on-disk entry, as listed by ``ls``/``gc``/``verify``."""

    kind: str
    digest: str
    path: str
    size: int
    mtime: float


class ContentStore:
    """A disk-backed, content-addressed map of canonical JSON payloads.

    Parameters
    ----------
    root:
        Store root directory; created (with ``meta.json``) if absent.
    max_entries / max_bytes:
        Default caps applied by :meth:`gc` when called without explicit
        limits.  ``None`` means uncapped.

    The store is safe for concurrent writers across processes (atomic
    write-then-rename; identical content converges) and tolerates a
    reader observing any interleaving — the worst case is a quarantined
    entry and a recompute, never a wrong answer.
    """

    def __init__(
        self,
        root: str,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        self.root = os.path.abspath(root)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.quarantined = 0
        self._objects = os.path.join(self.root, "objects")
        self._quarantine = os.path.join(self.root, "quarantine")
        self._check_meta()

    # ------------------------------------------------------------------
    # Root bookkeeping
    # ------------------------------------------------------------------

    def _check_meta(self) -> None:
        meta_path = os.path.join(self.root, "meta.json")
        try:
            with open(meta_path) as handle:
                meta = json.load(handle)
        except FileNotFoundError:
            os.makedirs(self._objects, exist_ok=True)
            os.makedirs(self._quarantine, exist_ok=True)
            self._write_atomic(
                meta_path,
                canonical_dump(
                    {"format": STORE_FORMAT, "version": STORE_VERSION}
                ),
            )
            return
        except (OSError, json.JSONDecodeError) as error:
            raise StoreError(
                f"store root {self.root!r} has an unreadable meta.json: "
                f"{error}"
            ) from error
        if not isinstance(meta, dict) or meta.get("format") != STORE_FORMAT:
            raise StoreError(
                f"{self.root!r} is not a {STORE_FORMAT} store root "
                f"(meta format={meta.get('format') if isinstance(meta, dict) else meta!r})"
            )
        version = meta.get("version")
        if not isinstance(version, int) or isinstance(version, bool):
            raise StoreError(f"store meta version must be an integer, got "
                             f"{version!r}")
        if version > STORE_VERSION:
            raise StoreError(
                f"store at {self.root!r} has version {version}, newer than "
                f"the supported version {STORE_VERSION}; upgrade the "
                "library to open it"
            )
        os.makedirs(self._objects, exist_ok=True)
        os.makedirs(self._quarantine, exist_ok=True)

    def _write_atomic(self, path: str, text: str) -> None:
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        tmp = os.path.join(
            directory,
            f".tmp.{os.getpid()}.{next(_tmp_counter)}",
        )
        with open(tmp, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    # Keys and paths
    # ------------------------------------------------------------------

    @staticmethod
    def key_digest(kind: str, key: Any) -> str:
        """SHA-256 hex naming the entry for ``(kind, key)``."""
        return digest_hex({"kind": kind, "key": key})

    def _entry_path(self, kind: str, digest: str) -> str:
        return os.path.join(self._objects, kind, digest[:2], f"{digest}.json")

    # ------------------------------------------------------------------
    # Put / get
    # ------------------------------------------------------------------

    def put(self, kind: str, key: Any, payload: Any) -> str:
        """Persist ``payload`` under ``(kind, key)``; returns the digest.

        Idempotent: re-putting the same key writes a byte-identical
        envelope (canonical dump), so concurrent writers converge.
        """
        digest = self.key_digest(kind, key)
        envelope: Dict[str, Any] = {
            "format": STORE_FORMAT,
            "version": STORE_VERSION,
            "kind": kind,
            "key": key,
            "payload": payload,
        }
        envelope["checksum"] = checksum(envelope)
        self._write_atomic(
            self._entry_path(kind, digest), canonical_dump(envelope)
        )
        self.puts += 1
        return digest

    def get(self, kind: str, key: Any) -> Optional[Any]:
        """The payload stored under ``(kind, key)``, or ``None`` on a miss.

        A corrupt entry (torn write, checksum mismatch, wrong key under
        the digest) is quarantined and reported as a miss — it is never
        served.  An entry from a *newer* store version raises
        :class:`StoreError`.  Successful reads bump the entry's mtime
        (the LRU clock :meth:`gc` evicts by).
        """
        digest = self.key_digest(kind, key)
        path = self._entry_path(kind, digest)
        envelope = self._read_envelope(path)
        if envelope is None:
            self.misses += 1
            return None
        if envelope.get("kind") != kind or envelope.get("key") != key:
            # Hash collision or a file moved by hand: not this entry.
            self._quarantine_entry(path)
            self.misses += 1
            return None
        self.hits += 1
        try:
            os.utime(path, None)
        except OSError:
            pass  # concurrently GC'd; the payload we read is still valid
        return envelope["payload"]

    def delete(self, kind: str, digest: str) -> bool:
        """Remove one entry by digest; True iff it existed."""
        try:
            os.remove(self._entry_path(kind, digest))
            return True
        except FileNotFoundError:
            return False

    # -- envelope reading ----------------------------------------------

    def _read_envelope(self, path: str) -> Optional[Dict[str, Any]]:
        """Parse and verify one envelope file; quarantine on corruption.

        Returns ``None`` for both "absent" and "quarantined" — the caller
        cannot use the entry either way.  Raises :class:`StoreError` only
        for the forward-compatibility gate (an envelope written by a
        newer library must not be guessed at *or* destroyed).
        """
        try:
            with open(path) as handle:
                text = handle.read()
        except (FileNotFoundError, NotADirectoryError):
            return None
        except OSError:
            return None
        try:
            envelope = json.loads(text)
        except json.JSONDecodeError:
            self._quarantine_entry(path)
            return None
        if (
            not isinstance(envelope, dict)
            or envelope.get("format") != STORE_FORMAT
            or set(envelope) != _ENVELOPE_KEYS
        ):
            self._quarantine_entry(path)
            return None
        version = envelope.get("version")
        if isinstance(version, int) and not isinstance(version, bool):
            if version > STORE_VERSION:
                raise StoreError(
                    f"store entry {path!r} has version {version}, newer "
                    f"than the supported version {STORE_VERSION}; upgrade "
                    "the library to read it"
                )
        else:
            self._quarantine_entry(path)
            return None
        claimed = envelope["checksum"]
        body = {k: envelope[k] for k in envelope if k != "checksum"}
        if claimed != checksum(body):
            self._quarantine_entry(path)
            return None
        return envelope

    def _quarantine_entry(self, path: str) -> None:
        """Move a corrupt entry aside (never silently deleted or served)."""
        base = os.path.basename(path)
        for attempt in itertools.count():
            target = os.path.join(
                self._quarantine,
                base if attempt == 0 else f"{attempt}-{base}",
            )
            if os.path.exists(target):
                continue
            try:
                os.replace(path, target)
            except FileNotFoundError:
                return  # another reader quarantined it first
            except OSError:
                return
            self.quarantined += 1
            return

    # ------------------------------------------------------------------
    # Enumeration, verification, GC
    # ------------------------------------------------------------------

    def entries(self) -> List[StoreEntry]:
        """All object entries, sorted by (kind, digest)."""
        found: List[StoreEntry] = []
        if not os.path.isdir(self._objects):
            return found
        for kind in sorted(os.listdir(self._objects)):
            kind_dir = os.path.join(self._objects, kind)
            if not os.path.isdir(kind_dir):
                continue
            for shard in sorted(os.listdir(kind_dir)):
                shard_dir = os.path.join(kind_dir, shard)
                if not os.path.isdir(shard_dir):
                    continue
                for name in sorted(os.listdir(shard_dir)):
                    if not name.endswith(".json"):
                        continue
                    path = os.path.join(shard_dir, name)
                    try:
                        status = os.stat(path)
                    except OSError:
                        continue
                    found.append(
                        StoreEntry(
                            kind,
                            name[: -len(".json")],
                            path,
                            status.st_size,
                            status.st_mtime,
                        )
                    )
        return found

    def scan(self, kind: str) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """Yield ``(digest, envelope)`` for every *valid* entry of a kind.

        Corrupt entries are quarantined along the way (same read rules as
        :meth:`get`); scanning does not bump LRU mtimes.
        """
        for entry in self.entries():
            if entry.kind != kind:
                continue
            envelope = self._read_envelope(entry.path)
            if envelope is not None:
                yield entry.digest, envelope

    def verify(self) -> Dict[str, Any]:
        """Re-hash every entry; quarantine and report the corrupt ones."""
        checked = 0
        corrupt: List[str] = []
        for entry in self.entries():
            checked += 1
            before = self.quarantined
            envelope = self._read_envelope(entry.path)
            if envelope is None or self.quarantined > before:
                corrupt.append(f"{entry.kind}/{entry.digest}")
        return {
            "checked": checked,
            "ok": checked - len(corrupt),
            "corrupt": corrupt,
        }

    def gc(
        self,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Evict least-recently-used entries beyond the caps.

        Explicit arguments override the store's defaults.  Returns the
        eviction report (oldest-mtime entries go first; ties break on the
        deterministic (kind, digest) listing order).
        """
        max_entries = self.max_entries if max_entries is None else max_entries
        max_bytes = self.max_bytes if max_bytes is None else max_bytes
        listing = sorted(self.entries(), key=lambda e: (e.mtime, e.kind,
                                                        e.digest))
        total_bytes = sum(entry.size for entry in listing)
        removed: List[str] = []
        index = 0
        while index < len(listing):
            over_entries = (
                max_entries is not None
                and len(listing) - index > max_entries
            )
            over_bytes = max_bytes is not None and total_bytes > max_bytes
            if not over_entries and not over_bytes:
                break
            entry = listing[index]
            index += 1
            if self.delete(entry.kind, entry.digest):
                removed.append(f"{entry.kind}/{entry.digest}")
            total_bytes -= entry.size
        return {
            "removed": removed,
            "kept": len(listing) - index,
            "bytes": max(total_bytes, 0),
        }

    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        return {
            "root": self.root,
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "quarantined": self.quarantined,
        }

    def __repr__(self) -> str:
        return f"ContentStore(root={self.root!r})"
