"""Codecs between engine objects and store payloads (plain JSON).

Two families of entries ride the content store:

- **Plans** (kind ``"plan"``): a compiled
  :class:`~repro.cq.plan.QueryPlan`'s homomorphism program, keyed by
  ``(query digest, backend, plan format version)``.  For a CQ plan every
  program element is a :class:`~repro.cq.terms.Variable` (the canonical
  database's domain *is* the variable set), so the arrays serialize by
  variable name and decode against the live query object — the payload
  never round-trips a Database.  Structured (Yannakakis) and vectorized
  programs are *not* serialized: both recompile deterministically from
  the query in microseconds, and the numpy-backend descriptor simply
  records that its plan carries a vectorized program, which
  :func:`decode_plan` eagerly recompiles.

- **Answers** (kind ``"answer"``): a memoized ``q(D)`` result, keyed by
  ``(query digest, database digest)``.  Rows serialize as type-tagged
  element tokens (``["i", 1]`` vs ``["s", "1"]`` — the digest module's
  discipline), and only JSON-native elements round-trip; an answer over
  exotic elements raises :class:`UnencodableAnswer` and is simply not
  persisted (correctness is unaffected — the entry is recomputed).

Both decoders are *strict in effect, lenient in failure mode*: a payload
that does not decode (hand-edited file that still checksums, an older
codec shape) raises :class:`CodecError`, which the warm facade treats as
a miss-and-recompute, never as data.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.cq.query import CQ
from repro.cq.terms import Variable
from repro.exceptions import StoreError

__all__ = [
    "PLAN_FORMAT",
    "ANSWER_FORMAT",
    "CodecError",
    "UnencodableAnswer",
    "encode_plan",
    "decode_plan",
    "encode_answer",
    "decode_answer",
]

#: Version of the plan payload shape; part of the plan key, so a codec
#: change cleanly misses old entries instead of misdecoding them.
PLAN_FORMAT = 1

#: Version of the answer payload shape; part of the memo key.
ANSWER_FORMAT = 1


class CodecError(StoreError):
    """A store payload does not decode to the expected engine object."""


class UnencodableAnswer(StoreError):
    """An answer holds elements outside the JSON-native token types."""


# ----------------------------------------------------------------------
# Element tokens (answers: int/str/bool only; plans: variables by name)
# ----------------------------------------------------------------------


def _encode_element(element: Any) -> List[Any]:
    if isinstance(element, bool):
        return ["b", element]
    if isinstance(element, int):
        return ["i", element]
    if isinstance(element, str):
        return ["s", element]
    raise UnencodableAnswer(
        f"element {element!r} of type {type(element).__name__} has no "
        "JSON round-trip; answer not persisted"
    )


def _decode_element(token: Any) -> Any:
    if (
        not isinstance(token, list)
        or len(token) != 2
        or token[0] not in ("b", "i", "s")
    ):
        raise CodecError(f"bad element token {token!r}")
    tag, value = token
    if tag == "b" and isinstance(value, bool):
        return value
    if tag == "i" and isinstance(value, int) and not isinstance(value, bool):
        return value
    if tag == "s" and isinstance(value, str):
        return value
    raise CodecError(f"element token {token!r} tag/value mismatch")


def _encode_variable(element: Any) -> str:
    if not isinstance(element, Variable):
        raise CodecError(
            f"plan program element {element!r} is not a Variable; "
            "only CQ plans are persisted"
        )
    return element.name


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------


def encode_plan(plan: Any) -> Dict[str, Any]:
    """Serialize a :class:`~repro.cq.plan.QueryPlan`'s program arrays."""
    program = plan.program
    return {
        "rule": str(plan.query),
        "seeded": sorted(_encode_variable(v) for v in program.seeded),
        "signatures": [
            [_encode_variable(element), [list(pair) for pair in signature]]
            for element, signature in program._signatures
        ],
        "relations": list(program._relations),
        "slots": [
            [[_encode_variable(element), bound] for element, bound in slot]
            for slot in program._slots
        ],
        "lookups": [
            None if lookup is None
            else [lookup[0], _encode_variable(lookup[1])]
            for lookup in program._lookups
        ],
        "vectorized": plan._vectorized is not None,
    }


def decode_plan(query: CQ, payload: Any) -> Any:
    """Rebuild a :class:`~repro.cq.plan.QueryPlan` for ``query``.

    The caller looked the payload up under the query's digest; the
    embedded rule is re-checked anyway so a mis-filed entry decodes to a
    :class:`CodecError` (treated as a miss), never to a wrong plan.
    """
    from repro.cq.plan import HomomorphismProgram, QueryPlan

    if not isinstance(payload, dict):
        raise CodecError(f"plan payload must be an object, got {payload!r}")
    if payload.get("rule") != str(query):
        raise CodecError(
            f"plan payload is for {payload.get('rule')!r}, not {query!s}"
        )
    by_name = {variable.name: variable for variable in query.variables}

    def variable(name: Any) -> Variable:
        if not isinstance(name, str) or name not in by_name:
            raise CodecError(f"unknown plan variable {name!r}")
        return by_name[name]

    try:
        seeded = frozenset(variable(name) for name in payload["seeded"])
        signatures = tuple(
            (
                variable(name),
                tuple((str(rel), int(pos)) for rel, pos in pairs),
            )
            for name, pairs in payload["signatures"]
        )
        relations = tuple(str(name) for name in payload["relations"])
        slots = tuple(
            tuple((variable(name), bool(bound)) for name, bound in slot)
            for slot in payload["slots"]
        )
        lookups = tuple(
            None if lookup is None else (int(lookup[0]), variable(lookup[1]))
            for lookup in payload["lookups"]
        )
        vectorized = bool(payload.get("vectorized", False))
    except (KeyError, TypeError, ValueError) as error:
        raise CodecError(f"malformed plan payload: {error}") from error
    if len(relations) != len(slots) or len(relations) != len(lookups):
        raise CodecError("plan payload arrays disagree on fact count")
    if seeded != frozenset(query.free_variables):
        raise CodecError("plan payload seeded set != query free variables")
    program = HomomorphismProgram(
        query.canonical_database, seeded, signatures, relations, slots,
        lookups,
    )
    plan = QueryPlan(query, program)
    if vectorized:
        # The descriptor records that this plan carried a vectorized
        # program; recompiling it here keeps warm numpy engines hot from
        # the first sweep (compilation reads only the query).
        plan.vectorized()
    return plan


# ----------------------------------------------------------------------
# Answers
# ----------------------------------------------------------------------


def encode_answer(answer: FrozenSet[Tuple[Any, ...]]) -> Dict[str, Any]:
    """Serialize a memoized ``q(D)`` answer set (rows of element tuples).

    Raises :class:`UnencodableAnswer` when any element has no JSON
    round-trip; the caller then skips persistence.
    """
    rows = sorted(
        [[_encode_element(element) for element in row] for row in answer]
    )
    return {"rows": rows}


def decode_answer(payload: Any) -> Optional[FrozenSet[Tuple[Any, ...]]]:
    """Rebuild an answer set; :class:`CodecError` on a malformed payload."""
    if not isinstance(payload, dict) or not isinstance(
        payload.get("rows"), list
    ):
        raise CodecError("answer payload must hold a rows list")
    rows = []
    for row in payload["rows"]:
        if not isinstance(row, list):
            raise CodecError(f"answer row {row!r} is not a list")
        rows.append(tuple(_decode_element(token) for token in row))
    return frozenset(rows)
