"""The engine-facing warm-state facade over a :class:`ContentStore`.

:class:`WarmStore` is what an :class:`~repro.cq.engine.EvaluationEngine`
(and the serving/gateway tiers) actually hold: it owns the key scheme,
runs the codecs, keeps hit/miss accounting, and shields the hot path from
the disk with a bounded *negative cache* — a key that just missed is not
re-stat'ed on every subsequent lookup of the same query/database pair
(training loops probe the same misses thousands of times).

Key scheme (all digests are ``sha256:<hex>`` canonical content hashes):

- plan entries: ``{"query": q.digest(), "backend": b, "format": PLAN_FORMAT}``
- answer entries: ``{"query": q.digest(), "database": D.digest(),
  "format": ANSWER_FORMAT}`` with the payload also recording the query's
  mentioned relations, so :meth:`invalidate_database` can drop exactly
  the entries a relation-scoped delta could have changed.

Invalidation discipline: keys are content-addressed, so a delta *never*
makes a stored answer wrong — the new database has a new digest and
simply misses.  :meth:`invalidate_database` exists for hygiene (the
retired digest's touched entries are dead weight) and mirrors
:meth:`~repro.cq.engine.EvaluationEngine.apply_delta`'s relation-scoped
rule: entries over disjoint relations are kept (still correct *and* still
reachable if the same database content recurs), touched ones are dropped.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, Optional, Tuple

from repro.cq.query import CQ
from repro.data.database import Database
from repro.exceptions import StoreError
from repro.store.codec import (
    ANSWER_FORMAT,
    PLAN_FORMAT,
    CodecError,
    UnencodableAnswer,
    decode_answer,
    decode_plan,
    encode_answer,
    encode_plan,
)
from repro.store.content import ContentStore

__all__ = ["WarmStore", "open_store"]

#: Bound on the in-memory negative cache; at the cap it is simply cleared
#: (misses then re-probe the disk once — correctness is unaffected).
_NEGATIVE_CACHE_LIMIT = 65536

PLAN_KIND = "plan"
ANSWER_KIND = "answer"


class WarmStore:
    """Plan + memo persistence with engine-shaped accounting."""

    def __init__(self, store: ContentStore) -> None:
        self.store = store
        self.plan_hits = 0
        self.plan_misses = 0
        self.plan_saves = 0
        self.memo_hits = 0
        self.memo_misses = 0
        self.memo_saves = 0
        self.skipped = 0
        self.invalidated = 0
        self._negative: set = set()

    @property
    def path(self) -> str:
        """The store root (what worker initializers re-open it from)."""
        return self.store.root

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------

    @staticmethod
    def plan_key(query: CQ, backend: str) -> Dict[str, Any]:
        return {
            "query": query.digest(),
            "backend": backend,
            "format": PLAN_FORMAT,
        }

    @staticmethod
    def answer_key(query: CQ, database: Database) -> Dict[str, Any]:
        return {
            "query": query.digest(),
            "database": database.digest(),
            "format": ANSWER_FORMAT,
        }

    def _negative_key(self, kind: str, key: Dict[str, Any]) -> str:
        return f"{kind}:{self.store.key_digest(kind, key)}"

    def _remember_miss(self, marker: str) -> None:
        if len(self._negative) >= _NEGATIVE_CACHE_LIMIT:
            self._negative.clear()
        self._negative.add(marker)

    # ------------------------------------------------------------------
    # Plans
    # ------------------------------------------------------------------

    def load_plan(self, query: CQ, backend: str) -> Optional[Any]:
        """The persisted :class:`~repro.cq.plan.QueryPlan`, or ``None``.

        A payload that fails to decode counts as a miss; the caller
        recompiles and the save overwrites the bad entry.
        """
        key = self.plan_key(query, backend)
        marker = self._negative_key(PLAN_KIND, key)
        if marker in self._negative:
            self.plan_misses += 1
            return None
        payload = self.store.get(PLAN_KIND, key)
        if payload is None:
            self.plan_misses += 1
            self._remember_miss(marker)
            return None
        try:
            plan = decode_plan(query, payload)
        except CodecError:
            self.plan_misses += 1
            return None
        self.plan_hits += 1
        return plan

    def save_plan(self, query: CQ, plan: Any, backend: str) -> None:
        key = self.plan_key(query, backend)
        try:
            payload = encode_plan(plan)
        except CodecError:
            self.skipped += 1
            return
        self.store.put(PLAN_KIND, key, payload)
        self.plan_saves += 1
        self._negative.discard(self._negative_key(PLAN_KIND, key))

    # ------------------------------------------------------------------
    # Memoized answers
    # ------------------------------------------------------------------

    def load_answer(
        self, query: CQ, database: Database
    ) -> Optional[FrozenSet[Tuple[Any, ...]]]:
        """The persisted ``q(D)`` answer set, or ``None`` on a miss."""
        key = self.answer_key(query, database)
        marker = self._negative_key(ANSWER_KIND, key)
        if marker in self._negative:
            self.memo_misses += 1
            return None
        payload = self.store.get(ANSWER_KIND, key)
        if payload is None:
            self.memo_misses += 1
            self._remember_miss(marker)
            return None
        try:
            answer = decode_answer(
                payload.get("answer") if isinstance(payload, dict) else None
            )
        except CodecError:
            self.memo_misses += 1
            return None
        self.memo_hits += 1
        return answer

    def save_answer(
        self,
        query: CQ,
        database: Database,
        answer: FrozenSet[Tuple[Any, ...]],
    ) -> None:
        key = self.answer_key(query, database)
        try:
            encoded = encode_answer(answer)
        except UnencodableAnswer:
            self.skipped += 1
            return
        payload = {
            "answer": encoded,
            "relations": sorted(query.mentioned_relations()),
        }
        self.store.put(ANSWER_KIND, key, payload)
        self.memo_saves += 1
        self._negative.discard(self._negative_key(ANSWER_KIND, key))

    def invalidate_database(
        self, database: Database, touched_relations: Iterable[str]
    ) -> int:
        """Drop answer entries for ``database`` touching any given relation.

        The relation-scoped mirror of
        :meth:`~repro.cq.engine.EvaluationEngine.apply_delta`: entries of
        the retired digest whose query mentions only untouched relations
        stay (still correct, still content-addressed); the rest go.
        Returns the number of dropped entries.
        """
        touched = frozenset(touched_relations)
        digest = database.digest()
        dropped = 0
        for entry_digest, envelope in self.store.scan(ANSWER_KIND):
            key = envelope.get("key")
            if not isinstance(key, dict) or key.get("database") != digest:
                continue
            payload = envelope.get("payload")
            relations = (
                payload.get("relations") if isinstance(payload, dict) else None
            )
            if not isinstance(relations, list) or not touched.isdisjoint(
                relations
            ):
                if self.store.delete(ANSWER_KIND, entry_digest):
                    dropped += 1
        self.invalidated += dropped
        return dropped

    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """JSON-safe accounting (metrics snapshots, CLI ``--metrics``)."""
        merged = dict(self.store.stats())
        merged.update(
            plan_hits=self.plan_hits,
            plan_misses=self.plan_misses,
            plan_saves=self.plan_saves,
            memo_hits=self.memo_hits,
            memo_misses=self.memo_misses,
            memo_saves=self.memo_saves,
            skipped=self.skipped,
            invalidated=self.invalidated,
        )
        return merged

    def __repr__(self) -> str:
        return f"WarmStore(root={self.store.root!r})"


def open_store(target: Any) -> Optional["WarmStore"]:
    """Normalize a ``store=`` knob into a :class:`WarmStore` (or ``None``).

    Accepts ``None`` (no store), a path string, a :class:`ContentStore`,
    or an existing :class:`WarmStore` (returned as-is, so one facade — and
    its accounting — can be shared across an engine, a service, and a
    registry).
    """
    if target is None:
        return None
    if isinstance(target, WarmStore):
        return target
    if isinstance(target, ContentStore):
        return WarmStore(target)
    if isinstance(target, str):
        return WarmStore(ContentStore(target))
    raise StoreError(
        f"store must be a path, ContentStore, or WarmStore; got "
        f"{type(target).__name__}"
    )
