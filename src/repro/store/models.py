"""Persistent model registry backend over the content store.

Artifacts go into the store as ``kind="model"`` envelopes keyed by
``(name, version)`` — the payload is the artifact's own canonical JSON
document, so a loaded model passes :meth:`ModelArtifact.from_json`'s full
strict validation (its embedded checksum *and* the envelope checksum).
A small ``refs.json`` index at the store root records, per model name,
the published versions and the *default* version — the durable form of
the gateway's rollout/rollback pinning, written atomically so a killed
process never leaves a half-updated index.

``refs.json`` is last-writer-wins across processes (publishing is a CLI /
deploy-time operation, not a hot path); the artifact envelopes themselves
are content-checked on every read, so the worst concurrent-publish
outcome is a stale listing, never a corrupt model.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from repro.data.digest import canonical_dump
from repro.exceptions import StoreError
from repro.serve.artifact import ModelArtifact
from repro.store.content import ContentStore

__all__ = ["ModelStore"]

MODEL_KIND = "model"

REFS_FORMAT = "repro-store-refs"
REFS_VERSION = 1


class ModelStore:
    """Publish, enumerate, load, and default-pin model versions."""

    def __init__(self, store: ContentStore) -> None:
        self.store = store
        self._refs_path = os.path.join(store.root, "refs.json")

    # ------------------------------------------------------------------
    # The refs index
    # ------------------------------------------------------------------

    def _read_refs(self) -> Dict[str, Any]:
        try:
            with open(self._refs_path) as handle:
                refs = json.load(handle)
        except FileNotFoundError:
            return {}
        except (OSError, json.JSONDecodeError) as error:
            raise StoreError(
                f"model refs index {self._refs_path!r} is unreadable: "
                f"{error}"
            ) from error
        if (
            not isinstance(refs, dict)
            or refs.get("format") != REFS_FORMAT
            or not isinstance(refs.get("models"), dict)
        ):
            raise StoreError(
                f"{self._refs_path!r} is not a {REFS_FORMAT} index"
            )
        version = refs.get("version")
        if isinstance(version, int) and version > REFS_VERSION:
            raise StoreError(
                f"model refs index version {version} is newer than the "
                f"supported version {REFS_VERSION}; upgrade the library"
            )
        return refs["models"]

    def _write_refs(self, models: Dict[str, Any]) -> None:
        self.store._write_atomic(
            self._refs_path,
            canonical_dump(
                {
                    "format": REFS_FORMAT,
                    "version": REFS_VERSION,
                    "models": models,
                }
            ),
        )

    # ------------------------------------------------------------------
    # Publishing and routing
    # ------------------------------------------------------------------

    def publish(
        self,
        name: str,
        artifact: ModelArtifact,
        version: Optional[str] = None,
        default: bool = False,
    ) -> str:
        """Persist an artifact as ``name@version``; returns the version.

        Omitting the version auto-numbers past the highest integer
        version published so far (mirroring the in-memory registry's
        registration-order numbering).  The first version published for a
        name becomes its default; ``default=True`` pins this one.
        """
        models = self._read_refs()
        entry = models.setdefault(name, {"versions": {}, "default": None})
        if version is None:
            numeric = [
                int(v) for v in entry["versions"] if v.isdigit()
            ]
            version = str(max(numeric, default=0) + 1)
        self.store.put(
            MODEL_KIND,
            {"name": name, "version": version},
            json.loads(artifact.to_json()),
        )
        entry["versions"][version] = artifact.checksum()
        if default or entry["default"] is None:
            entry["default"] = version
        self._write_refs(models)
        return version

    def models(self) -> Dict[str, Dict[str, Any]]:
        """``{name: {"versions": {version: checksum}, "default": v}}``."""
        return self._read_refs()

    def versions(self, name: str) -> List[str]:
        entry = self._read_refs().get(name)
        return sorted(entry["versions"]) if entry else []

    def set_default(self, name: str, version: str) -> None:
        """Durably pin the default version (rollout / rollback)."""
        models = self._read_refs()
        entry = models.get(name)
        if entry is None or version not in entry["versions"]:
            raise StoreError(
                f"cannot default {name!r} to unpublished version "
                f"{version!r}"
            )
        entry["default"] = version
        self._write_refs(models)

    def default_version(self, name: str) -> Optional[str]:
        entry = self._read_refs().get(name)
        return entry["default"] if entry else None

    def load(self, name: str, version: str) -> ModelArtifact:
        """Load and strictly validate ``name@version`` from the store.

        A quarantined/absent envelope (tampered store) surfaces as a
        :class:`StoreError` — the registry treats the version as
        unavailable rather than serving a guess.
        """
        payload = self.store.get(MODEL_KIND, {"name": name, "version": version})
        if payload is None:
            raise StoreError(
                f"model {name!r}@{version!r} is missing from the store "
                "(never published, GC'd, or quarantined as corrupt)"
            )
        return ModelArtifact.from_json(json.dumps(payload))

    def remove(self, name: str, version: Optional[str] = None) -> int:
        """Unpublish one version (or all of a name); returns removals."""
        models = self._read_refs()
        entry = models.get(name)
        if entry is None:
            return 0
        targets = [version] if version is not None else list(entry["versions"])
        removed = 0
        for target in targets:
            if target not in entry["versions"]:
                continue
            digest = self.store.key_digest(
                MODEL_KIND, {"name": name, "version": target}
            )
            self.store.delete(MODEL_KIND, digest)
            del entry["versions"][target]
            removed += 1
        if not entry["versions"]:
            del models[name]
        elif entry["default"] not in entry["versions"]:
            entry["default"] = sorted(entry["versions"])[0]
        self._write_refs(models)
        return removed

    def __repr__(self) -> str:
        return f"ModelStore(root={self.store.root!r})"
