"""repro: reproduction of "Regularizing Conjunctive Features for Classification".

The public API re-exports the most commonly used names; subpackages hold the
full surface:

- :mod:`repro.data` — schemas, databases, labelings, products.
- :mod:`repro.cq` — conjunctive queries: evaluation, containment, enumeration.
- :mod:`repro.hypergraph` — tree decompositions and generalized hypertree width.
- :mod:`repro.covergame` — the existential k-cover game (the ``→_k`` preorder).
- :mod:`repro.linsep` — linear classifiers and (approximate) linear separability.
- :mod:`repro.core` — the paper's separability / generation / classification algorithms.
- :mod:`repro.fo` — first-order feature languages (Section 8).
- :mod:`repro.workloads` — synthetic data generators and hard-instance families.
- :mod:`repro.runtime` — sharded parallel execution across worker processes.
- :mod:`repro.serve` — pickle-free model artifacts and batched inference serving.
- :mod:`repro.stream` — deltas, evolving databases, incremental classification.
- :mod:`repro.gateway` — asyncio HTTP serving tier with batching and a registry.
- :mod:`repro.store` — content-addressed warm-state persistence (plans,
  memoized answers, published models) for hot process restarts.
"""

from repro.cq import CQ, Atom, Variable, parse_cq
from repro.data import (
    Database,
    DatabaseBuilder,
    EntitySchema,
    Fact,
    Labeling,
    Schema,
    TrainingDatabase,
)
from repro.core import (
    GhwClassifier,
    SeparatingPair,
    Statistic,
    cqm_approx_separability,
    cqm_separability,
    generate_ghw_statistic,
    ghw_approx_separable,
    ghw_classify,
    ghw_separable,
)

__version__ = "1.0.0"

__all__ = [
    "CQ",
    "Atom",
    "Variable",
    "parse_cq",
    "Database",
    "DatabaseBuilder",
    "Fact",
    "Labeling",
    "Schema",
    "EntitySchema",
    "TrainingDatabase",
    "Statistic",
    "SeparatingPair",
    "GhwClassifier",
    "cqm_separability",
    "cqm_approx_separability",
    "ghw_separable",
    "ghw_classify",
    "ghw_approx_separable",
    "generate_ghw_statistic",
    "__version__",
]
