"""Multi-model registry: route names to warmed inference services.

One gateway process serves several models (or several versions of one
model, mid-rollout).  :class:`ModelRegistry` owns that mapping:

- **Registration** binds ``name@version`` to an artifact path.  Versions
  are explicit strings; omitting one auto-numbers ``"1"``, ``"2"``, ... in
  registration order, and the first registered version of a name becomes
  its default.  With a warm-state ``store``, every model published to the
  store's :class:`~repro.store.ModelStore` is enumerated and registered at
  construction (store-backed entries carry no path — they load from the
  store), and default-version pins are persisted back, so rollout and
  rollback survive gateway restarts.
- **Loading is lazy, warmed, and single-flight**: the artifact is read,
  validated, and compiled (:meth:`InferenceService.warm_up`) on first
  use, then the warm service is cached.  Loads may run on worker threads;
  concurrent first requests for the same entry coalesce on a condition
  variable — exactly one thread loads and warms, the rest wait and lease
  the same service.
- **Rollout / rollback** is default-version pinning: requests that name
  only a model get its *default* version, so ``set_default("m", "2")``
  rolls traffic forward and ``set_default("m", "1")`` rolls it back,
  without touching the registrations.
- **Eviction is LRU over idle services**: at most ``max_loaded`` services
  stay resident; beyond that, least-recently-used entries with **zero
  leases** are closed.  A leased (in-use) service is never evicted —
  callers wrap request handling in :meth:`acquire` / the lease's
  ``release`` so eviction can never yank a model mid-batch.

Every loaded service shares the registry's one executor (``workers > 1``
spins up a single process pool reused across all models) — warm worker
processes are the expensive resource, and N models must not mean N pools.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.exceptions import GatewayError
from repro.runtime import Executor, make_executor
from repro.serve import InferenceService, ModelArtifact

__all__ = ["ModelRegistry", "ModelLease"]


class _Entry:
    """One registered ``name@version``, loaded or not.

    ``path`` is ``None`` for store-backed entries (the artifact loads from
    the registry's :class:`~repro.store.ModelStore` instead of a file).
    ``loading`` marks an in-flight load-and-warm; other acquirers of the
    same entry wait on the registry condition instead of loading twice.
    """

    __slots__ = ("name", "version", "path", "service", "leases", "last_used",
                 "loading")

    def __init__(self, name: str, version: str, path: Optional[str]) -> None:
        self.name = name
        self.version = version
        self.path = path
        self.service: Optional[InferenceService] = None
        self.leases = 0
        self.last_used = 0
        self.loading = False


class ModelLease:
    """A borrowed service: holds off eviction until released.

    Usable as a context manager; :meth:`release` is idempotent.
    """

    __slots__ = ("name", "version", "service", "_release")

    def __init__(
        self,
        name: str,
        version: str,
        service: InferenceService,
        release: Callable[[], None],
    ) -> None:
        self.name = name
        self.version = version
        self.service = service
        self._release: Optional[Callable[[], None]] = release

    def release(self) -> None:
        release, self._release = self._release, None
        if release is not None:
            release()

    def __enter__(self) -> "ModelLease":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.release()


class ModelRegistry:
    """Name/version routing over lazily loaded, warmed inference services.

    Parameters
    ----------
    workers:
        Micro-batch parallelism shared by every loaded service; ``> 1``
        creates one process pool reused across all models.
    backend:
        Evaluation backend for every loaded service (``"python"`` /
        ``"numpy"``).
    on_error:
        Degradation mode passed to every loaded service.  The gateway
        default is ``"abstain"`` — one malformed request must not take
        down its whole micro-batch.
    max_loaded:
        Ceiling on resident services; ``None`` disables eviction.
    on_evict:
        ``callback(name, version, service)`` invoked (inside the registry
        lock) just after an evicted service is dropped from the table and
        just before it is closed — the gateway uses it to retire the
        model's dispatch lane.
    store:
        Optional warm-state store (path string or open store object).
        Every model already published in the store is registered at
        construction and loads lazily *from the store*; default-version
        pins persist back; and every loaded service evaluates through the
        store, so plans and answers warmed by one gateway process are hot
        in the next.
    """

    def __init__(
        self,
        workers: int = 1,
        backend: str = "python",
        on_error: str = "abstain",
        max_loaded: Optional[int] = None,
        on_evict: Optional[Callable[[str, str, InferenceService], None]] = None,
        store: Optional[Any] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if max_loaded is not None and max_loaded < 1:
            raise GatewayError(f"max_loaded must be >= 1, got {max_loaded}")
        self.workers = workers
        self.backend = backend
        # The gateway's dispatch lanes are threads, so auto-selection
        # resolves to spawn at pool-creation time; an explicit "fork"
        # here is honored but is the operator's call (DESIGN.md §3.15).
        self.start_method = start_method
        self.on_error = on_error
        self.max_loaded = max_loaded
        self._on_evict = on_evict
        self._entries: Dict[Tuple[str, str], _Entry] = {}
        self._versions: Dict[str, List[str]] = {}
        self._defaults: Dict[str, str] = {}
        self._executor: Optional[Executor] = None
        self._lock = threading.RLock()
        self._load_done = threading.Condition(self._lock)
        self._clock = 0
        self._closed = False
        self.loads = 0
        self.evictions = 0
        if store is None:
            self._store = None
            self._model_store = None
        else:
            from repro.store import ModelStore
            from repro.store.warm import open_store

            self._store = open_store(store)
            self._model_store = ModelStore(self._store.store)
            self._register_from_store()

    def _register_from_store(self) -> None:
        """Register every model published in the store (store-backed)."""
        assert self._model_store is not None
        for name, info in sorted(self._model_store.models().items()):
            for version in sorted(info["versions"]):
                key = (name, version)
                if key in self._entries:
                    continue
                self._entries[key] = _Entry(name, version, None)
                self._versions.setdefault(name, []).append(version)
            default = info.get("default")
            if default is not None:
                self._defaults[name] = default

    # ------------------------------------------------------------------
    # Registration and routing
    # ------------------------------------------------------------------

    def register(
        self,
        name: str,
        path: str,
        version: Optional[str] = None,
        default: bool = False,
    ) -> str:
        """Bind ``name@version`` to an artifact path; returns the version.

        The first version registered for a name becomes its default;
        ``default=True`` pins this one instead (rollout at registration).
        """
        with self._lock:
            if version is None:
                version = str(len(self._versions.get(name, [])) + 1)
            key = (name, version)
            if key in self._entries:
                raise GatewayError(
                    f"model {name!r} version {version!r} already registered"
                )
            self._entries[key] = _Entry(name, version, path)
            self._versions.setdefault(name, []).append(version)
            if default or name not in self._defaults:
                self._defaults[name] = version
            return version

    def set_default(self, name: str, version: str) -> None:
        """Pin the version unversioned requests for ``name`` resolve to.

        With a store, a pin on a store-published model is persisted into
        the store's refs index, so the rollout (or rollback) survives a
        restart.
        """
        with self._lock:
            if (name, version) not in self._entries:
                raise GatewayError(
                    f"cannot default {name!r} to unregistered "
                    f"version {version!r}"
                )
            self._defaults[name] = version
            if (
                self._model_store is not None
                and version in self._model_store.models().get(name, {}).get(
                    "versions", {}
                )
            ):
                self._model_store.set_default(name, version)

    def resolve(
        self, name: Optional[str] = None, version: Optional[str] = None
    ) -> Tuple[str, str]:
        """Resolve a (possibly partial) route to a registered pair.

        An omitted name is allowed only when exactly one model is
        registered; an omitted version resolves to the name's default.
        """
        with self._lock:
            if name is None:
                if len(self._versions) != 1:
                    raise GatewayError(
                        "request must name a model: "
                        f"{len(self._versions)} models are registered"
                    )
                name = next(iter(self._versions))
            if name not in self._versions:
                raise GatewayError(f"unknown model {name!r}")
            if version is None:
                version = self._defaults[name]
            if (name, version) not in self._entries:
                raise GatewayError(
                    f"unknown version {version!r} of model {name!r}"
                )
            return name, version

    # ------------------------------------------------------------------
    # Loading, leasing, eviction
    # ------------------------------------------------------------------

    def acquire(
        self, name: Optional[str] = None, version: Optional[str] = None
    ) -> ModelLease:
        """Resolve, load-and-warm if needed, and lease the service.

        Safe to call from worker threads: artifact loading and warm-up
        happen outside the registry lock, **single-flight per entry** —
        the first acquirer marks the entry loading and compiles; every
        concurrent acquirer of the same entry waits on the registry
        condition and leases the one warmed service (``loads`` counts one
        load, not one per caller).  If the loader fails, one waiter takes
        over the load rather than failing on someone else's error.
        """
        name, version = self.resolve(name, version)
        key = (name, version)
        with self._load_done:
            while True:
                if self._closed:
                    raise GatewayError("registry is closed")
                entry = self._entries.get(key)
                if entry is None:
                    raise GatewayError(
                        f"model {name!r}@{version!r} was removed"
                    )
                if entry.service is not None:
                    entry.leases += 1
                    self._clock += 1
                    entry.last_used = self._clock
                    return ModelLease(
                        name, version, entry.service,
                        lambda: self._release(key),
                    )
                if not entry.loading:
                    entry.loading = True
                    path = entry.path
                    break
                self._load_done.wait()
        # Load and warm outside the lock: compilation can take a while and
        # must not block routing of other models' requests.
        try:
            service = self._load_service(name, version, path)
        except BaseException:
            with self._load_done:
                entry = self._entries.get(key)
                if entry is not None:
                    entry.loading = False
                self._load_done.notify_all()
            raise
        with self._load_done:
            entry = self._entries.get(key)
            if entry is None:
                # Unregistered while we compiled; nothing to cache.
                service.close()
                self._load_done.notify_all()
                raise GatewayError(f"model {name!r}@{version!r} was removed")
            entry.loading = False
            entry.service = service
            self.loads += 1
            entry.leases += 1
            self._clock += 1
            entry.last_used = self._clock
            self._evict_idle()
            self._load_done.notify_all()
            return ModelLease(
                name, version, entry.service, lambda: self._release(key)
            )

    def _load_service(
        self, name: str, version: str, path: Optional[str]
    ) -> InferenceService:
        """Load + warm one service (no registry lock held)."""
        if path is not None:
            artifact = ModelArtifact.load(path)
        else:
            assert self._model_store is not None
            artifact = self._model_store.load(name, version)
        service = InferenceService(
            artifact,
            executor=self._shared_executor(),
            on_error=self.on_error,
            backend=self.backend,
            store=self._store,
        )
        service.warm_up()
        return service

    def _release(self, key: Tuple[str, str]) -> None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry.leases > 0:
                entry.leases -= 1
            self._evict_idle()

    def _evict_idle(self) -> None:
        """Close LRU unleased services beyond ``max_loaded``.  Lock held.

        The ``max_loaded`` most-recently-used services are *protected*
        regardless of lease state — a service that just finished a batch
        must not be evicted because an older, still-leased one cannot be.
        Leased entries in the LRU tail are skipped (never close a model
        mid-use), so residency may overshoot the cap while leases pin it;
        the next release sweeps again.
        """
        if self.max_loaded is None:
            return
        loaded = sorted(
            (e for e in self._entries.values() if e.service is not None),
            key=lambda e: e.last_used,
            reverse=True,
        )
        excess = len(loaded) - self.max_loaded
        if excess <= 0:
            return
        for entry in reversed(loaded[self.max_loaded:]):  # oldest first
            if excess <= 0:
                break
            if entry.leases > 0:
                continue
            service, entry.service = entry.service, None
            self.evictions += 1
            excess -= 1
            assert service is not None
            if self._on_evict is not None:
                self._on_evict(entry.name, entry.version, service)
            service.close()

    def _shared_executor(self) -> Optional[Executor]:
        if self.workers <= 1:
            return None
        with self._lock:
            if self._executor is None:
                self._executor = make_executor(
                    self.workers,
                    backend=self.backend,
                    store_path=(
                        self._store.path if self._store is not None else None
                    ),
                    start_method=self.start_method,
                )
            return self._executor

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------

    def loaded(self, name: str, version: str) -> bool:
        with self._lock:
            entry = self._entries.get((name, version))
            return entry is not None and entry.service is not None

    def peek(
        self, name: str, version: str
    ) -> Optional[InferenceService]:
        """The resident service for an exact pair, without a lease.

        For read-only introspection (the /metrics endpoint, shed
        attribution) — never for serving: a peeked service may be evicted
        at any moment.  ``None`` when the pair is unregistered or not
        loaded.
        """
        with self._lock:
            entry = self._entries.get((name, version))
            return entry.service if entry is not None else None

    def models(self) -> List[Dict[str, Any]]:
        """The ``GET /v1/models`` listing: one row per registered model."""
        with self._lock:
            rows = []
            for name in sorted(self._versions):
                versions = []
                for version in self._versions[name]:
                    entry = self._entries[(name, version)]
                    row: Dict[str, Any] = {
                        "version": version,
                        "loaded": entry.service is not None,
                        "leases": entry.leases,
                    }
                    if entry.service is not None:
                        artifact = entry.service.artifact
                        row["dimension"] = artifact.dimension
                        row["checksum"] = artifact.checksum()
                    versions.append(row)
                rows.append(
                    {
                        "name": name,
                        "default_version": self._defaults[name],
                        "versions": versions,
                    }
                )
            return rows

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            stats = {
                "registered": len(self._entries),
                "loaded": sum(
                    1 for e in self._entries.values() if e.service is not None
                ),
                "loads": self.loads,
                "evictions": self.evictions,
                "max_loaded": self.max_loaded,
                "workers": self.workers,
                "backend": self.backend,
            }
            if self._store is not None:
                stats["store"] = self._store.stats()
            return stats

    def close(self) -> None:
        """Close every loaded service and the shared pool.  Idempotent.

        Wakes any acquirers waiting on an in-flight load so they observe
        the closed registry instead of blocking forever.
        """
        with self._load_done:
            self._closed = True
            for entry in self._entries.values():
                if entry.service is not None:
                    service, entry.service = entry.service, None
                    service.close()
            if self._executor is not None:
                executor, self._executor = self._executor, None
                executor.close()
            self._load_done.notify_all()

    def __enter__(self) -> "ModelRegistry":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        with self._lock:
            loaded = sum(
                1 for e in self._entries.values() if e.service is not None
            )
            return (
                f"ModelRegistry({len(self._entries)} registered, "
                f"{loaded} loaded, backend={self.backend!r})"
            )
