"""Minimal HTTP/1.1 codec over asyncio streams — stdlib only.

The gateway speaks just enough HTTP/1.1 for a production-shaped serving
tier without adding a dependency (numpy stays the repo's only optional
one): request-line + header parsing with hard size limits, bodies by
``Content-Length`` or ``chunked`` transfer coding, keep-alive connection
reuse, JSON responses, and chunked NDJSON response streaming for the
delta-stream endpoint.

Parsing errors surface as :class:`HttpError` carrying the status the
connection handler should answer with (400/405/411/413/431/...), so the
server loop stays a straight pipeline: read head → read body → route →
respond.  A clean EOF before the first request byte is *not* an error —
:func:`read_head` returns ``None`` and the keep-alive loop ends quietly.
"""

from __future__ import annotations

import asyncio
import json
from typing import (
    Any,
    AsyncIterator,
    Dict,
    Iterable,
    Optional,
    Tuple,
)
from urllib.parse import parse_qsl, unquote

from repro.exceptions import GatewayError

__all__ = [
    "HttpError",
    "HttpRequest",
    "read_head",
    "read_body",
    "iter_ndjson",
    "response_bytes",
    "json_response",
    "NdjsonStreamWriter",
    "REASONS",
]

#: Reason phrases for every status the gateway emits.
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Hard cap on the request head (request line + headers).
MAX_HEADER_BYTES = 16384

#: Default cap on request bodies; the server can lower or raise it.
DEFAULT_MAX_BODY = 8 * 1024 * 1024

_SUPPORTED_METHODS = frozenset(("GET", "POST", "HEAD", "PUT", "DELETE"))


class HttpError(GatewayError):
    """A malformed or unserviceable request, with the HTTP status to send."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class HttpRequest:
    """One parsed request head (the body is read separately, if at all)."""

    __slots__ = ("method", "path", "query", "headers", "version")

    def __init__(
        self,
        method: str,
        path: str,
        query: Dict[str, str],
        headers: Dict[str, str],
        version: str,
    ) -> None:
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.version = version

    @property
    def keep_alive(self) -> bool:
        """HTTP/1.1 defaults to keep-alive; 1.0 defaults to close."""
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"

    @property
    def content_length(self) -> Optional[int]:
        raw = self.headers.get("content-length")
        if raw is None:
            return None
        try:
            length = int(raw)
        except ValueError:
            raise HttpError(400, f"invalid Content-Length {raw!r}") from None
        if length < 0:
            raise HttpError(400, f"negative Content-Length {raw!r}")
        return length

    @property
    def chunked(self) -> bool:
        coding = self.headers.get("transfer-encoding", "").lower().strip()
        if not coding:
            return False
        if coding != "chunked":
            raise HttpError(400, f"unsupported transfer coding {coding!r}")
        return True

    def __repr__(self) -> str:
        return f"HttpRequest({self.method} {self.path})"


async def read_head(
    reader: asyncio.StreamReader,
    max_header_bytes: int = MAX_HEADER_BYTES,
) -> Optional[HttpRequest]:
    """Read and parse one request head, or ``None`` on clean EOF.

    A connection closed between requests (no bytes pending) is the normal
    end of a keep-alive session; a connection dying mid-head is a 400.
    """
    try:
        raw = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise HttpError(400, "connection closed inside the request head")
    except asyncio.LimitOverrunError:
        raise HttpError(431, "request head exceeds the stream limit")
    if len(raw) > max_header_bytes:
        raise HttpError(431, f"request head over {max_header_bytes} bytes")

    lines = raw[:-4].split(b"\r\n")
    try:
        request_line = lines[0].decode("ascii")
    except UnicodeDecodeError:
        raise HttpError(400, "request line is not ASCII")
    parts = request_line.split(" ")
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line {request_line!r}")
    method, target, version = parts
    if method not in _SUPPORTED_METHODS:
        raise HttpError(405, f"unsupported method {method!r}")
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpError(400, f"unsupported HTTP version {version!r}")

    path, _, query_string = target.partition("?")
    query = {key: value for key, value in parse_qsl(query_string)}

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(b":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        try:
            headers[name.decode("ascii").strip().lower()] = (
                value.decode("latin-1").strip()
            )
        except UnicodeDecodeError:
            raise HttpError(400, "header name is not ASCII")

    return HttpRequest(method, unquote(path), query, headers, version)


async def _read_chunked(
    reader: asyncio.StreamReader, max_body: int
) -> bytes:
    """Decode a ``chunked`` request body (no trailer support)."""
    chunks = []
    total = 0
    while True:
        try:
            size_line = await reader.readuntil(b"\r\n")
        except asyncio.IncompleteReadError:
            raise HttpError(400, "connection closed inside a chunk header")
        try:
            size = int(size_line.split(b";", 1)[0].strip(), 16)
        except ValueError:
            raise HttpError(400, f"malformed chunk size {size_line!r}")
        if size < 0:
            raise HttpError(400, "negative chunk size")
        if size == 0:
            # Consume the (empty) trailer section.
            try:
                while (await reader.readuntil(b"\r\n")) != b"\r\n":
                    pass
            except asyncio.IncompleteReadError:
                raise HttpError(400, "connection closed inside the trailer")
            return b"".join(chunks)
        total += size
        if total > max_body:
            raise HttpError(413, f"chunked body over {max_body} bytes")
        try:
            chunk = await reader.readexactly(size + 2)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "connection closed inside a chunk")
        if chunk[-2:] != b"\r\n":
            raise HttpError(400, "chunk missing its CRLF terminator")
        chunks.append(chunk[:-2])


async def read_body(
    reader: asyncio.StreamReader,
    head: HttpRequest,
    max_body: int = DEFAULT_MAX_BODY,
) -> bytes:
    """Read the request body per the head's framing headers.

    Bodies need explicit framing: a POST with neither ``Content-Length``
    nor ``chunked`` is answered 411 (the gateway never reads to EOF, which
    would break keep-alive).
    """
    if head.chunked:
        return await _read_chunked(reader, max_body)
    length = head.content_length
    if length is None:
        if head.method in ("GET", "HEAD", "DELETE"):
            return b""
        raise HttpError(411, "request body requires Content-Length or chunked")
    if length > max_body:
        raise HttpError(413, f"body of {length} bytes over the {max_body} cap")
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise HttpError(400, "connection closed inside the request body")


async def iter_ndjson(
    reader: asyncio.StreamReader,
    head: HttpRequest,
    max_body: int = DEFAULT_MAX_BODY,
) -> AsyncIterator[Any]:
    """Yield parsed JSON values from an NDJSON request body, incrementally.

    The streaming endpoint's request reader: ops are processed as they
    arrive instead of after the whole body (which, for a long-lived
    delta stream, may never end).  Supports both framings; with
    ``chunked`` the iterator is genuinely incremental across chunks.
    """
    buffer = b""
    line_number = 0

    def parse(line: bytes) -> Any:
        nonlocal line_number
        line_number += 1
        try:
            return json.loads(line)
        except json.JSONDecodeError as error:
            raise HttpError(
                400, f"stream line {line_number}: invalid JSON: {error}"
            )

    if head.chunked:
        while True:
            try:
                size_line = await reader.readuntil(b"\r\n")
                size = int(size_line.split(b";", 1)[0].strip(), 16)
            except (asyncio.IncompleteReadError, ValueError):
                raise HttpError(400, "malformed chunk inside NDJSON stream")
            if size == 0:
                try:
                    while (await reader.readuntil(b"\r\n")) != b"\r\n":
                        pass
                except asyncio.IncompleteReadError:
                    raise HttpError(400, "connection closed in the trailer")
                break
            if size + len(buffer) > max_body:
                raise HttpError(413, "NDJSON stream line over the body cap")
            try:
                chunk = await reader.readexactly(size + 2)
            except asyncio.IncompleteReadError:
                raise HttpError(400, "connection closed inside a chunk")
            buffer += chunk[:-2]
            while b"\n" in buffer:
                line, buffer = buffer.split(b"\n", 1)
                if line.strip():
                    yield parse(line)
    else:
        length = head.content_length
        if length is None:
            raise HttpError(
                411, "NDJSON stream requires Content-Length or chunked"
            )
        if length > max_body:
            raise HttpError(413, f"body of {length} bytes over the cap")
        remaining = length
        while remaining > 0:
            chunk = await reader.read(min(65536, remaining))
            if not chunk:
                raise HttpError(400, "connection closed inside the stream")
            remaining -= len(chunk)
            buffer += chunk
            while b"\n" in buffer:
                line, buffer = buffer.split(b"\n", 1)
                if line.strip():
                    yield parse(line)
    if buffer.strip():
        yield parse(buffer)


def response_bytes(
    status: int,
    body: bytes = b"",
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: Iterable[Tuple[str, str]] = (),
) -> bytes:
    """One complete HTTP/1.1 response, ready for a single ``write``."""
    reason = REASONS.get(status, "Unknown")
    parts = [
        f"HTTP/1.1 {status} {reason}\r\n",
        f"content-length: {len(body)}\r\n",
        f"content-type: {content_type}\r\n",
    ]
    if not keep_alive:
        parts.append("connection: close\r\n")
    for name, value in extra_headers:
        parts.append(f"{name}: {value}\r\n")
    parts.append("\r\n")
    return "".join(parts).encode("ascii") + body


def json_response(
    status: int,
    payload: Any,
    keep_alive: bool = True,
    extra_headers: Iterable[Tuple[str, str]] = (),
) -> bytes:
    """A JSON-encoded :func:`response_bytes` (sorted keys, one line)."""
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    return response_bytes(
        status, body, keep_alive=keep_alive, extra_headers=extra_headers
    )


class NdjsonStreamWriter:
    """Chunked NDJSON response streaming for the delta-stream endpoint.

    Each :meth:`send` emits one JSON line as its own HTTP chunk, so the
    client sees every prediction as soon as the engine produced it —
    headers go out on the first line (or at :meth:`finish` for an empty
    stream), which lets the handler still answer a plain error response
    if the stream fails before producing anything.
    """

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self._writer = writer
        self._started = False
        self.lines = 0

    @property
    def started(self) -> bool:
        return self._started

    async def _start(self) -> None:
        self._writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"content-type: application/x-ndjson\r\n"
            b"transfer-encoding: chunked\r\n\r\n"
        )
        self._started = True

    async def send(self, payload: Any) -> None:
        if not self._started:
            await self._start()
        line = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self._writer.write(b"%x\r\n" % len(line) + line + b"\r\n")
        self.lines += 1
        await self._writer.drain()

    async def finish(self) -> None:
        if not self._started:
            await self._start()
        self._writer.write(b"0\r\n\r\n")
        await self._writer.drain()
