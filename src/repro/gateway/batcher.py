"""Micro-batching: coalesce concurrent requests into bounded batches.

:class:`MicroBatcher` is the piece that turns a network tier's many small
concurrent requests into the batch-shaped work the engine is good at
(``InferenceService.predict_batch``, compiled plans, the vectorized
backend).  Requests submitted while a batch is forming ride along; a batch
is dispatched when it reaches ``max_batch`` distinct items (**size
trigger**) or when the oldest pending request has waited ``window``
seconds (**deadline trigger**), whichever comes first — so batching never
adds more than one window of latency.

**Request fusion** is the second win: two concurrent requests carrying the
same payload (keyed by the caller, e.g. by raw body bytes) are coalesced
into *one* batch slot, and the single result is fanned out to every
waiting future.  Under hot-key traffic — many clients re-scoring the same
databases — a batch of 64 submissions may dispatch only a handful of
distinct evaluations.  One-request-per-call serving structurally cannot do
this; it is where most of the gateway's measured throughput headroom
comes from (benchmark A12).

The batcher is an asyncio object: :meth:`submit` must be called on the
event loop.  The ``dispatch`` callable is ``async`` and receives the
distinct items of one batch; the gateway's dispatcher hands them to a
worker thread so the loop never blocks on engine work.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict, List, Optional, Set

from repro.exceptions import GatewayError

__all__ = ["MicroBatcher"]

#: Flush triggers, as counted in :meth:`MicroBatcher.stats`.
TRIGGERS = ("size", "deadline", "drain")


class _Group:
    """One distinct batch slot: an item and every future fused onto it."""

    __slots__ = ("key", "item", "futures")

    def __init__(self, key: Any, item: Any) -> None:
        self.key = key
        self.item = item
        self.futures: List["asyncio.Future[Any]"] = []


class MicroBatcher:
    """Coalesce ``submit`` calls into batched ``dispatch`` calls.

    Parameters
    ----------
    dispatch:
        ``async`` callable receiving the list of distinct items of one
        batch and returning one result per item, in order.  Results are
        fanned out to the submitting futures; an exception fails every
        request of the batch.
    max_batch:
        Size trigger: dispatch as soon as this many *distinct* items are
        pending.  ``1`` disables coalescing entirely — every request
        becomes its own dispatch — which is the A12 baseline.
    window:
        Deadline trigger, in seconds: the longest a pending request waits
        before its (possibly undersized) batch is dispatched.
    fuse:
        Whether to coalesce submissions that share a key.  Keys are
        supplied per ``submit``; ``None`` keys never fuse.
    """

    def __init__(
        self,
        dispatch: Callable[[List[Any]], Awaitable[List[Any]]],
        max_batch: int = 16,
        window: float = 0.005,
        fuse: bool = True,
    ) -> None:
        if max_batch < 1:
            raise GatewayError(f"max_batch must be >= 1, got {max_batch}")
        if window < 0:
            raise GatewayError(f"batch window must be >= 0, got {window}")
        self._dispatch = dispatch
        self.max_batch = max_batch
        self.window = window
        self.fuse = fuse
        self._pending: List[_Group] = []
        self._by_key: Dict[Any, _Group] = {}
        self._timer: Optional[asyncio.TimerHandle] = None
        self._inflight: Set["asyncio.Task[None]"] = set()
        self._closed = False
        # Counters (monotonic; see stats()).
        self.submitted = 0
        self.fused = 0
        self.batches = 0
        self.dispatched_items = 0
        self.dispatch_errors = 0
        self.largest_batch = 0
        self.flushes = {trigger: 0 for trigger in TRIGGERS}

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Requests (not distinct items) waiting in the forming batch."""
        return sum(len(group.futures) for group in self._pending)

    @property
    def inflight_batches(self) -> int:
        return len(self._inflight)

    async def submit(self, item: Any, key: Any = None) -> Any:
        """Enqueue one request; resolves with its result from the batch.

        ``key`` identifies the payload for fusion: concurrent submits with
        an equal key share one batch slot and one evaluation.  Pass
        ``None`` (the default) for unfusable requests.
        """
        if self._closed:
            raise GatewayError("micro-batcher is draining; submit refused")
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Any]" = loop.create_future()
        self.submitted += 1
        group: Optional[_Group] = None
        if self.fuse and key is not None:
            group = self._by_key.get(key)
        if group is not None:
            self.fused += 1
            group.futures.append(future)
        else:
            group = _Group(key, item)
            group.futures.append(future)
            self._pending.append(group)
            if self.fuse and key is not None:
                self._by_key[key] = group
            if len(self._pending) >= self.max_batch:
                self._flush("size")
            elif self._timer is None:
                self._timer = loop.call_later(
                    self.window, self._flush, "deadline"
                )
        return await future

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------

    def _flush(self, trigger: str) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        groups, self._pending = self._pending, []
        self._by_key.clear()
        self.batches += 1
        self.dispatched_items += len(groups)
        self.largest_batch = max(self.largest_batch, len(groups))
        self.flushes[trigger] += 1
        task = asyncio.ensure_future(self._run(groups))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _run(self, groups: List[_Group]) -> None:
        try:
            results = await self._dispatch([group.item for group in groups])
            if len(results) != len(groups):
                raise GatewayError(
                    f"dispatch returned {len(results)} results for "
                    f"{len(groups)} items"
                )
        except Exception as error:  # noqa: BLE001 - fanned out, not lost
            self.dispatch_errors += 1
            for group in groups:
                for future in group.futures:
                    if not future.done():
                        future.set_exception(error)
            return
        for group, result in zip(groups, results):
            for future in group.futures:
                if not future.done():
                    future.set_result(result)

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------

    async def drain(self) -> None:
        """Refuse new submits, dispatch the forming batch, await all.

        Idempotent; after drain the batcher stays closed (graceful
        shutdown is one-way — restart with a fresh batcher).
        """
        self._closed = True
        self._flush("drain")
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)

    @property
    def closed(self) -> bool:
        return self._closed

    def stats(self) -> Dict[str, Any]:
        """Counters for the /metrics endpoint and the A12 report."""
        dispatched = self.dispatched_items
        return {
            "submitted": self.submitted,
            "fused": self.fused,
            "batches": self.batches,
            "dispatched_items": dispatched,
            "dispatch_errors": self.dispatch_errors,
            "largest_batch": self.largest_batch,
            "mean_batch": (
                dispatched / self.batches if self.batches else 0.0
            ),
            "flushes": dict(self.flushes),
            "queue_depth": self.queue_depth,
            "inflight_batches": self.inflight_batches,
        }

    def __repr__(self) -> str:
        return (
            f"MicroBatcher(max_batch={self.max_batch}, "
            f"window={self.window}, submitted={self.submitted}, "
            f"batches={self.batches})"
        )
