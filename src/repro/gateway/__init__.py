"""repro.gateway: a stdlib-only asyncio network serving tier.

The gateway turns the in-process serving subsystem (:mod:`repro.serve`)
into a network service without adding a dependency: an HTTP/1.1 front end
(:mod:`~repro.gateway.http`) over ``asyncio.start_server``, per-model
micro-batching with request fusion (:mod:`~repro.gateway.batcher`),
admission control with 429/503 shedding (:mod:`~repro.gateway.admission`),
and a multi-model registry with lazy warmed loads, LRU eviction, and
default-version rollout/rollback (:mod:`~repro.gateway.registry`), all
assembled by :class:`~repro.gateway.server.GatewayServer`.

Start one from Python::

    registry = ModelRegistry(backend="numpy")
    registry.register("retail", "model.json")
    async with GatewayServer(registry, port=8080) as gateway:
        await gateway.serve_forever()

or from the command line: ``repro serve retail=model.json --port 8080``.

Predictions served over the wire are bit-identical to
:meth:`~repro.serve.service.InferenceService.predict` on the same input —
the gateway only changes *when* work runs (batched, on a per-model lane
thread), never *what* is computed.
"""

from repro.gateway.admission import AdmissionController
from repro.gateway.batcher import MicroBatcher
from repro.gateway.http import (
    HttpError,
    HttpRequest,
    NdjsonStreamWriter,
    json_response,
    read_body,
    read_head,
    response_bytes,
)
from repro.gateway.registry import ModelLease, ModelRegistry
from repro.gateway.server import GatewayServer, metrics_line

__all__ = [
    "AdmissionController",
    "GatewayServer",
    "HttpError",
    "HttpRequest",
    "MicroBatcher",
    "ModelLease",
    "ModelRegistry",
    "NdjsonStreamWriter",
    "json_response",
    "metrics_line",
    "read_body",
    "read_head",
    "response_bytes",
]
