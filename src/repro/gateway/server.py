"""The gateway server: HTTP routing, per-model lanes, graceful shutdown.

:class:`GatewayServer` assembles the gateway from its parts — the HTTP
codec (:mod:`repro.gateway.http`), one :class:`~repro.gateway.batcher.MicroBatcher`
per served model, an :class:`~repro.gateway.admission.AdmissionController`
at the front door, and a :class:`~repro.gateway.registry.ModelRegistry`
behind it — into an asyncio service exposing:

- ``POST /v1/predict``        one pointed database → labels (micro-batched,
  with request fusion on identical bodies)
- ``POST /v1/predict_batch``  many databases in one call → one result each
- ``POST /v1/stream``         NDJSON op stream (init / delta / predict)
  over an evolving database, chunked NDJSON predictions back
- ``GET /v1/models``          the registry listing
- ``GET /metrics``            gateway + per-model metric snapshots
- ``GET /healthz``            liveness (503 once draining)

**Threading model.**  The asyncio loop only parses HTTP and routes; all
engine work runs on a per-model *lane* — a single worker thread that owns
that model's evaluation order.  One thread per model (not a pool) is
deliberate: the engine and its caches are not thread-safe, and a lane
serializes all of a model's batches exactly like the single-process
serving path tier-1 tests pin down.  Model routing happens *before* the
lane, so requests are grouped by ``?model=&version=`` query parameters
and each batch is single-model by construction; the raw body bytes double
as the fusion key.

**Shutdown** (:meth:`GatewayServer.stop`) drains rather than drops: new
requests are shed with 503, the listener closes, in-flight batches finish
(bounded by ``drain_timeout``), lanes and the registry close.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple

from repro.data.database import Database
from repro.data.io import _element_to_str, facts_from_json
from repro.exceptions import GatewayError, ParseError, ReproError
from repro.gateway.admission import RETRY_AFTER_S, AdmissionController
from repro.gateway.batcher import MicroBatcher
from repro.gateway.http import (
    DEFAULT_MAX_BODY,
    HttpError,
    HttpRequest,
    NdjsonStreamWriter,
    iter_ndjson,
    json_response,
    read_body,
    read_head,
)
from repro.gateway.registry import ModelRegistry
from repro.serve.service import InferenceService

__all__ = ["GatewayServer", "metrics_line"]

#: How long :meth:`GatewayServer.stop` waits for in-flight work, seconds.
DEFAULT_DRAIN_TIMEOUT = 10.0


def labels_json(labeling: Any) -> Dict[str, int]:
    """A labeling as the JSON object every repro surface emits."""
    return {
        _element_to_str(entity): labeling[entity]
        for entity in sorted(labeling, key=str)
    }


def metrics_line(snapshot: Dict[str, Any]) -> str:
    """One log line from a :meth:`GatewayServer.metrics` snapshot.

    The shared formatting of ``repro serve --metrics-interval`` and the
    A12 benchmark report: request/shed counts, latency quantiles,
    throughput, and batching effectiveness, in a fixed field order.
    """
    gateway = snapshot.get("gateway", {})
    admission = gateway.get("admission", {})
    requests = 0
    errors = 0
    entities = 0
    p50 = p95 = p99 = 0.0
    rps: Optional[float] = None
    for model in snapshot.get("models", {}).values():
        requests += model.get("requests", 0)
        errors += model.get("errors", 0)
        entities += model.get("entities", 0)
        latency = model.get("latency_ms", {})
        p50 = max(p50, latency.get("p50", 0.0))
        p95 = max(p95, latency.get("p95", 0.0))
        p99 = max(p99, latency.get("p99", 0.0))
        model_rps = model.get("throughput", {}).get("requests_per_s")
        if model_rps is not None:
            rps = (rps or 0.0) + model_rps
    submitted = fused = batches = 0
    for lane in gateway.get("lanes", {}).values():
        submitted += lane.get("submitted", 0)
        fused += lane.get("fused", 0)
        batches += lane.get("batches", 0)
    shed = admission.get("shed_busy", 0) + admission.get("shed_draining", 0)
    return (
        f"requests={requests} entities={entities} errors={errors} "
        f"shed={shed} in_flight={admission.get('in_flight', 0)} "
        f"p50={p50:.2f}ms p95={p95:.2f}ms p99={p99:.2f}ms "
        f"rps={f'{rps:.0f}' if rps is not None else 'idle'} "
        f"batches={batches} batched={submitted} fused={fused}"
    )


class _Lane:
    """One model's serving lane: a worker thread plus its micro-batcher.

    The thread serializes every batch for this ``name@version`` (engine
    caches are single-threaded state); the batcher coalesces concurrent
    requests in front of it.
    """

    __slots__ = ("name", "version", "pool", "batcher")

    def __init__(
        self,
        name: str,
        version: str,
        dispatch: Callable[[List[bytes]], Awaitable[List[Tuple[int, bytes]]]],
        max_batch: int,
        window: float,
    ) -> None:
        self.name = name
        self.version = version
        self.pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"lane-{name}-{version}"
        )
        self.batcher = MicroBatcher(dispatch, max_batch=max_batch, window=window)

    def retire(self, wait: bool) -> None:
        self.pool.shutdown(wait=wait)


class GatewayServer:
    """Serve a :class:`ModelRegistry` over HTTP/1.1.

    Parameters
    ----------
    registry:
        The models to serve.  The server takes ownership: :meth:`stop`
        closes it.
    host, port:
        Listen address; port 0 picks an ephemeral port (see
        :attr:`port` after :meth:`start`).
    max_batch:
        Micro-batch size trigger per model lane; 1 disables coalescing.
    batch_window:
        Micro-batch deadline trigger, seconds.
    max_in_flight:
        Admission ceiling on concurrently admitted requests.
    max_body:
        Request body cap, bytes.
    drain_timeout:
        Longest :meth:`stop` waits for in-flight work before cancelling.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = 16,
        batch_window: float = 0.002,
        max_in_flight: int = 256,
        max_body: int = DEFAULT_MAX_BODY,
        drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
    ) -> None:
        if max_batch < 1:
            raise GatewayError(f"max_batch must be >= 1, got {max_batch}")
        self.registry = registry
        self.host = host
        self._requested_port = port
        self.max_batch = max_batch
        self.batch_window = batch_window
        self.max_body = max_body
        self.drain_timeout = drain_timeout
        self.admission = AdmissionController(max_in_flight)
        self._lanes: Dict[Tuple[str, str], _Lane] = {}
        self._lanes_lock = threading.Lock()
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()
        self._started_at: Optional[float] = None
        self.streams_open = 0
        registry._on_evict = self._on_evict

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (resolves port 0 after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        if self._server is not None:
            raise GatewayError("gateway already started")
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self._requested_port
        )
        self._started_at = time.monotonic()

    async def stop(self) -> None:
        """Graceful shutdown: shed, stop listening, drain, close.

        Safe to call more than once; later calls only re-run the (idempotent)
        close steps.
        """
        self.admission.begin_drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = time.monotonic() + self.drain_timeout
        while self.admission.in_flight > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        with self._lanes_lock:
            lanes = list(self._lanes.values())
        for lane in lanes:
            await lane.batcher.drain()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        for lane in lanes:
            lane.retire(wait=True)
        self.registry.close()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    async def __aenter__(self) -> "GatewayServer":
        await self.start()
        return self

    async def __aexit__(self, *_exc: Any) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.ensure_future(self._serve_connection(reader, writer))
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    head = await read_head(reader)
                except HttpError as error:
                    # The connection state is unknown (bytes may be stuck
                    # mid-request), so answer and close rather than reuse.
                    writer.write(
                        json_response(
                            error.status,
                            {"error": str(error)},
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    return
                if head is None:
                    return
                keep_alive = head.keep_alive and not self.admission.draining
                try:
                    handled = await self._route(head, reader, writer, keep_alive)
                except HttpError as error:
                    writer.write(
                        json_response(
                            error.status,
                            {"error": str(error)},
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    return
                if not handled or not keep_alive:
                    return
        except (asyncio.CancelledError, ConnectionResetError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _route(
        self,
        head: HttpRequest,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        keep_alive: bool,
    ) -> bool:
        """Dispatch one request; returns False when the connection must close."""
        method, path = head.method, head.path
        if path == "/healthz":
            if method not in ("GET", "HEAD"):
                raise HttpError(405, f"{method} not allowed on {path}")
            draining = self.admission.draining
            response = json_response(
                503 if draining else 200,
                {"status": "draining" if draining else "ok"},
                keep_alive=keep_alive,
            )
            if method == "HEAD":
                # Headers only, but with GET's content-length (a load
                # balancer probing HEAD must see the same framing).
                response = response.split(b"\r\n\r\n", 1)[0] + b"\r\n\r\n"
            writer.write(response)
            await writer.drain()
            return True
        if path == "/metrics":
            if method != "GET":
                raise HttpError(405, f"{method} not allowed on {path}")
            writer.write(
                json_response(200, self.metrics(), keep_alive=keep_alive)
            )
            await writer.drain()
            return True
        if path == "/v1/models":
            if method != "GET":
                raise HttpError(405, f"{method} not allowed on {path}")
            writer.write(
                json_response(
                    200, {"models": self.registry.models()},
                    keep_alive=keep_alive,
                )
            )
            await writer.drain()
            return True
        if path == "/v1/predict":
            if method != "POST":
                raise HttpError(405, f"{method} not allowed on {path}")
            body = await read_body(reader, head, self.max_body)
            status, payload = await self._predict(head, body)
            writer.write(
                json_response(
                    status,
                    payload,
                    keep_alive=keep_alive,
                    extra_headers=self._shed_headers(status),
                )
            )
            await writer.drain()
            return True
        if path == "/v1/predict_batch":
            if method != "POST":
                raise HttpError(405, f"{method} not allowed on {path}")
            body = await read_body(reader, head, self.max_body)
            status, payload = await self._predict_batch(head, body)
            writer.write(
                json_response(
                    status,
                    payload,
                    keep_alive=keep_alive,
                    extra_headers=self._shed_headers(status),
                )
            )
            await writer.drain()
            return True
        if path == "/v1/stream":
            if method != "POST":
                raise HttpError(405, f"{method} not allowed on {path}")
            return await self._stream(head, reader, writer)
        raise HttpError(404, f"no route for {path}")

    @staticmethod
    def _shed_headers(status: int) -> List[Tuple[str, str]]:
        if status in (429, 503):
            return [("retry-after", str(RETRY_AFTER_S))]
        return []

    # ------------------------------------------------------------------
    # Lanes
    # ------------------------------------------------------------------

    def _lane_for(self, name: str, version: str) -> _Lane:
        key = (name, version)
        with self._lanes_lock:
            lane = self._lanes.get(key)
            if lane is None:
                lane = _Lane(
                    name,
                    version,
                    self._make_dispatch(key),
                    self.max_batch,
                    self.batch_window,
                )
                self._lanes[key] = lane
            return lane

    def _make_dispatch(
        self, key: Tuple[str, str]
    ) -> Callable[[List[bytes]], Awaitable[List[Tuple[int, bytes]]]]:
        async def dispatch(bodies: List[bytes]) -> List[Tuple[int, bytes]]:
            with self._lanes_lock:
                lane = self._lanes.get(key)
            if lane is None:
                raise GatewayError(
                    f"model {key[0]!r}@{key[1]!r} lane was retired"
                )
            depth = lane.batcher.queue_depth
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(
                lane.pool, self._execute_batch, key, bodies, depth
            )

        return dispatch

    def _on_evict(
        self, name: str, version: str, _service: InferenceService
    ) -> None:
        """Registry eviction callback: retire the model's lane.

        Called with the registry lock held, possibly from a lane thread —
        so the pool shutdown must not wait (a lane cannot join itself).
        In-flight batches hold a lease, so eviction only ever fires on
        idle lanes; a later request simply builds a fresh lane.
        """
        with self._lanes_lock:
            lane = self._lanes.pop((name, version), None)
        if lane is not None:
            lane.retire(wait=False)

    # ------------------------------------------------------------------
    # /v1/predict
    # ------------------------------------------------------------------

    async def _predict(
        self, head: HttpRequest, body: bytes
    ) -> Tuple[int, Any]:
        name = head.query.get("model")
        version = head.query.get("version")
        shed = self.admission.try_admit()
        if shed is not None:
            status, reason = shed
            self._record_shed(name, version)
            return status, {"error": reason}
        try:
            try:
                resolved = self.registry.resolve(name, version)
            except GatewayError as error:
                return 404, {"error": str(error)}
            lane = self._lane_for(*resolved)
            try:
                status, payload = await lane.batcher.submit(body, key=body)
            except GatewayError as error:
                return 503, {"error": str(error)}
            return status, json.loads(payload)
        finally:
            self.admission.release()

    def _execute_batch(
        self, key: Tuple[str, str], bodies: List[bytes], depth: int
    ) -> List[Tuple[int, bytes]]:
        """Parse, predict, and encode one micro-batch.  Lane thread only."""
        name, version = key
        with self.registry.acquire(name, version) as lease:
            service = lease.service
            service.metrics.observe_queue_depth(depth)
            parsed: List[Optional[Tuple[Any, Database]]] = []
            results: List[Optional[Tuple[int, bytes]]] = []
            for body in bodies:
                try:
                    parsed.append(self._parse_predict(body))
                    results.append(None)
                except (ParseError, HttpError, GatewayError) as error:
                    parsed.append(None)
                    results.append(
                        (400, _encode({"error": str(error)}))
                    )
            databases = [entry[1] for entry in parsed if entry is not None]
            labelings = service.predict_batch(databases)
            position = 0
            for index, entry in enumerate(parsed):
                if entry is None:
                    continue
                request_id, _ = entry
                labeling = labelings[position]
                position += 1
                if labeling is None:
                    results[index] = (
                        422,
                        _encode(
                            {
                                "id": request_id,
                                "error": (
                                    "feature evaluation failed; abstained"
                                ),
                            }
                        ),
                    )
                else:
                    results[index] = (
                        200,
                        _encode(
                            {
                                "id": request_id,
                                "model": name,
                                "version": version,
                                "labels": labels_json(labeling),
                            }
                        ),
                    )
            assert all(result is not None for result in results)
            return results  # type: ignore[return-value]

    def _parse_predict(self, body: bytes) -> Tuple[Any, Database]:
        """One predict body → (request id, pointed database).

        Accepts ``{"facts": [...], "id": ...}`` (the CLI request-line
        shape) or a bare facts list.
        """
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as error:
            raise ParseError(f"invalid JSON body: {error}") from None
        return self._parse_predict_payload(payload)

    @staticmethod
    def _parse_predict_payload(payload: Any) -> Tuple[Any, Database]:
        if isinstance(payload, list):
            return None, Database(facts_from_json(payload))
        if isinstance(payload, dict) and "facts" in payload:
            return payload.get("id"), Database(
                facts_from_json(payload["facts"])
            )
        raise ParseError(
            "predict body must be a facts list or an object with a "
            "'facts' list"
        )

    def _record_shed(
        self, name: Optional[str], version: Optional[str]
    ) -> None:
        """Attribute a shed to the target model's metrics, if resident."""
        try:
            resolved = self.registry.resolve(name, version)
        except GatewayError:
            return
        service = self.registry.peek(*resolved)
        if service is not None:
            service.metrics.observe_shed()

    # ------------------------------------------------------------------
    # /v1/predict_batch
    # ------------------------------------------------------------------

    async def _predict_batch(
        self, head: HttpRequest, body: bytes
    ) -> Tuple[int, Any]:
        name = head.query.get("model")
        version = head.query.get("version")
        shed = self.admission.try_admit()
        if shed is not None:
            status, reason = shed
            self._record_shed(name, version)
            return status, {"error": reason}
        try:
            try:
                resolved = self.registry.resolve(name, version)
            except GatewayError as error:
                return 404, {"error": str(error)}
            lane = self._lane_for(*resolved)
            loop = asyncio.get_running_loop()
            status, payload = await loop.run_in_executor(
                lane.pool, self._execute_batch_request, resolved, body
            )
            return status, json.loads(payload)
        finally:
            self.admission.release()

    def _execute_batch_request(
        self, key: Tuple[str, str], body: bytes
    ) -> Tuple[int, bytes]:
        """One explicit batch request, whole-batch.  Lane thread only."""
        name, version = key
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as error:
            return 400, _encode({"error": f"invalid JSON body: {error}"})
        if isinstance(payload, dict) and "requests" in payload:
            entries = payload["requests"]
        elif isinstance(payload, list):
            entries = payload
        else:
            return 400, _encode(
                {
                    "error": (
                        "batch body must be a list of requests or an "
                        "object with a 'requests' list"
                    )
                }
            )
        if not isinstance(entries, list):
            return 400, _encode({"error": "'requests' must be a list"})
        requests: List[Tuple[Any, Database]] = []
        try:
            for entry in entries:
                requests.append(self._parse_predict_payload(entry))
        except (ParseError, GatewayError) as error:
            return 400, _encode({"error": str(error)})
        with self.registry.acquire(name, version) as lease:
            # An empty batch short-circuits in predict_batch ([] in, [] out,
            # no warm-up, no metrics) — the gateway mirrors that contract.
            labelings = lease.service.predict_batch(
                [database for _, database in requests]
            )
        results: List[Dict[str, Any]] = []
        for (request_id, _), labeling in zip(requests, labelings):
            if labeling is None:
                results.append(
                    {
                        "id": request_id,
                        "error": "feature evaluation failed; abstained",
                    }
                )
            else:
                results.append(
                    {"id": request_id, "labels": labels_json(labeling)}
                )
        return 200, _encode(
            {"model": name, "version": version, "results": results}
        )

    # ------------------------------------------------------------------
    # /v1/stream
    # ------------------------------------------------------------------

    async def _stream(
        self,
        head: HttpRequest,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> bool:
        """Serve one NDJSON op stream; returns False (connection closes).

        Ops mirror ``repro predict --stream``: ``init`` (once, first),
        then interleaved ``delta`` / ``predict``.  Each predict answers
        one chunked NDJSON line, flushed as soon as the engine produced
        it.  The stream holds one admission slot and one model lease for
        its whole life, so draining waits for it and eviction cannot
        close the model under it.
        """
        name = head.query.get("model")
        version = head.query.get("version")
        shed = self.admission.try_admit()
        if shed is not None:
            status, reason = shed
            self._record_shed(name, version)
            writer.write(
                json_response(
                    status,
                    {"error": reason},
                    keep_alive=False,
                    extra_headers=self._shed_headers(status),
                )
            )
            await writer.drain()
            return False
        loop = asyncio.get_running_loop()
        out = NdjsonStreamWriter(writer)
        lease = None
        stream = None
        self.streams_open += 1
        try:
            try:
                resolved = self.registry.resolve(name, version)
            except GatewayError as error:
                writer.write(
                    json_response(404, {"error": str(error)}, keep_alive=False)
                )
                await writer.drain()
                return False
            lane = self._lane_for(*resolved)
            lease = await loop.run_in_executor(
                lane.pool, self.registry.acquire, *resolved
            )
            line_number = 0
            async for op in iter_ndjson(reader, head, self.max_body):
                line_number += 1
                try:
                    result = await self._stream_op(
                        loop, lane, lease.service, stream, op, line_number
                    )
                except (ParseError, ReproError) as error:
                    await out.send({"line": line_number, "error": str(error)})
                    break
                stream, reply = result
                if reply is not None:
                    await out.send(reply)
            await out.finish()
            return False
        except (asyncio.CancelledError, ConnectionResetError):
            return False
        except HttpError as error:
            if out.started:
                return False
            writer.write(
                json_response(
                    error.status, {"error": str(error)}, keep_alive=False
                )
            )
            await writer.drain()
            return False
        finally:
            self.streams_open -= 1
            if lease is not None:
                lease.release()
            self.admission.release()

    async def _stream_op(
        self,
        loop: asyncio.AbstractEventLoop,
        lane: _Lane,
        service: InferenceService,
        stream: Any,
        op: Any,
        line_number: int,
    ) -> Tuple[Any, Optional[Dict[str, Any]]]:
        """Apply one op on the lane thread; returns (stream, reply line)."""
        from repro.stream import Delta

        if not isinstance(op, dict) or "op" not in op:
            raise ParseError(
                f"op line {line_number}: expected an object with an 'op' key"
            )
        kind = op["op"]
        if kind == "init":
            if stream is not None:
                raise ParseError(
                    f"op line {line_number}: duplicate init (one evolving "
                    "database per stream)"
                )
            if "facts" not in op:
                raise ParseError(
                    f"op line {line_number}: init requires a 'facts' list"
                )
            base = Database(facts_from_json(op["facts"]))
            stream = await loop.run_in_executor(
                lane.pool, service.open_stream, base
            )
            return stream, None
        if kind == "delta":
            if stream is None:
                raise ParseError(f"op line {line_number}: delta before init")
            body = {k: v for k, v in op.items() if k != "op"}
            delta = Delta.from_json_dict(body)
            await loop.run_in_executor(lane.pool, stream.apply, delta)
            return stream, None
        if kind == "predict":
            if stream is None:
                raise ParseError(f"op line {line_number}: predict before init")
            request_id = op.get("id", line_number)
            labeling = await loop.run_in_executor(lane.pool, stream.predict)
            if labeling is None:
                return stream, {
                    "id": request_id,
                    "error": "feature evaluation failed; abstained",
                }
            return stream, {
                "id": request_id,
                "version": stream.version,
                "labels": labels_json(labeling),
            }
        raise ParseError(
            f"op line {line_number}: unknown op {kind!r} "
            "(expected init, delta, or predict)"
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def metrics(self) -> Dict[str, Any]:
        """The ``GET /metrics`` document: gateway + per-model snapshots."""
        with self._lanes_lock:
            lanes = {
                f"{name}@{version}": lane.batcher.stats()
                for (name, version), lane in self._lanes.items()
            }
        models: Dict[str, Any] = {}
        for row in self.registry.models():
            for version_row in row["versions"]:
                if not version_row["loaded"]:
                    continue
                service = self.registry.peek(row["name"], version_row["version"])
                if service is not None:
                    models[f"{row['name']}@{version_row['version']}"] = (
                        service.metrics_snapshot()
                    )
        uptime = (
            time.monotonic() - self._started_at
            if self._started_at is not None
            else 0.0
        )
        return {
            "gateway": {
                "uptime_seconds": uptime,
                "admission": self.admission.snapshot(),
                "lanes": lanes,
                "registry": self.registry.stats(),
                "streams_open": self.streams_open,
                "config": {
                    "max_batch": self.max_batch,
                    "batch_window_s": self.batch_window,
                    "max_body": self.max_body,
                },
            },
            "models": models,
        }


def _encode(payload: Any) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
