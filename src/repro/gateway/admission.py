"""Admission control: bounded in-flight work, shed the rest at the door.

A single-process asyncio gateway has no kernel to push back for it: if it
accepts every connection's request, a burst turns into an unbounded pile
of pending futures, latency grows without limit, and the process
eventually dies far from the cause.  :class:`AdmissionController` is the
explicit alternative — a counter with a ceiling.  A request is either
*admitted* (and must be :meth:`release`\\ d exactly once) or *shed*
immediately with the status a well-behaved HTTP client understands:

- ``429 Too Many Requests`` — the gateway is at its in-flight ceiling;
  retry after a beat (``Retry-After`` is sent).
- ``503 Service Unavailable`` — the gateway is draining for shutdown;
  this instance will not come back, go elsewhere.

Shedding is *immediate* (no queue of waiting requests in front of the
counter): the micro-batcher already is the queue, and its depth is what
the ceiling bounds.  The controller is loop-confined like the rest of the
server — plain counters, no locks.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.exceptions import GatewayError

__all__ = ["AdmissionController"]

#: Retry-After (seconds) suggested to clients shed with 429.
RETRY_AFTER_S = 1


class AdmissionController:
    """Bound the number of requests in flight; shed the overflow.

    Parameters
    ----------
    max_in_flight:
        Ceiling on concurrently admitted requests (admitted but not yet
        released — queued in a micro-batcher, being parsed, or being
        evaluated all count).
    """

    def __init__(self, max_in_flight: int = 256) -> None:
        if max_in_flight < 1:
            raise GatewayError(
                f"max_in_flight must be >= 1, got {max_in_flight}"
            )
        self.max_in_flight = max_in_flight
        self.in_flight = 0
        self.admitted = 0
        self.shed_busy = 0
        self.shed_draining = 0
        self._draining = False

    # ------------------------------------------------------------------

    def try_admit(self) -> Optional[Tuple[int, str]]:
        """Admit the request, or return the ``(status, reason)`` to shed it.

        ``None`` means admitted: the caller now owes one :meth:`release`.
        """
        if self._draining:
            self.shed_draining += 1
            return (503, "gateway is draining")
        if self.in_flight >= self.max_in_flight:
            self.shed_busy += 1
            return (429, f"gateway at capacity ({self.max_in_flight} in flight)")
        self.in_flight += 1
        self.admitted += 1
        return None

    def release(self) -> None:
        """Mark one admitted request as finished (success or failure)."""
        if self.in_flight <= 0:
            raise GatewayError("release() without a matching admit")
        self.in_flight -= 1

    # ------------------------------------------------------------------

    def begin_drain(self) -> None:
        """Refuse all new requests with 503; in-flight work continues."""
        self._draining = True

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def sheds(self) -> int:
        return self.shed_busy + self.shed_draining

    def snapshot(self) -> Dict[str, Any]:
        return {
            "max_in_flight": self.max_in_flight,
            "in_flight": self.in_flight,
            "admitted": self.admitted,
            "shed_busy": self.shed_busy,
            "shed_draining": self.shed_draining,
            "draining": self._draining,
        }

    def __repr__(self) -> str:
        return (
            f"AdmissionController(in_flight={self.in_flight}/"
            f"{self.max_in_flight}, shed={self.sheds}, "
            f"draining={self._draining})"
        )
