"""repro.stream: incremental maintenance for evolving background databases.

The paper fixes the background database once (§2); production traffic does
not.  This subsystem makes the stack delta-aware end to end:

- :mod:`repro.stream.delta` — :class:`Delta`: an immutable, composable
  fact-level change set with ``touched_relations`` and a JSONL codec
  shared with :mod:`repro.data.io`;
- :mod:`repro.stream.evolving` — :class:`EvolvingDatabase`: an immutable
  snapshot plus a replayable delta log, O(|delta|) application with
  structural sharing of untouched relations, per-relation generation
  counters, and a per-version ``materialize()`` provably equal to a
  from-scratch rebuild;
- :mod:`repro.stream.classifier` — :class:`StreamingClassifier`: after a
  delta, only feature queries mentioning a touched relation are
  re-evaluated; everything else is read back from the engine caches that
  :meth:`EvaluationEngine.apply_delta
  <repro.cq.engine.EvaluationEngine.apply_delta>` migrated across the
  delta.  Results are bit-identical to full recomputation by construction.

Entry points: ``InferenceService.open_stream()`` for stateful serving and
the CLI's ``repro predict --stream`` for interleaved delta/predict JSONL
op streams.
"""

from repro.stream.classifier import StreamingClassifier
from repro.stream.delta import (
    Delta,
    delta_from_json,
    delta_to_json,
    deltas_from_jsonl,
    deltas_to_jsonl,
)
from repro.stream.evolving import EvolvingDatabase

__all__ = [
    "Delta",
    "EvolvingDatabase",
    "StreamingClassifier",
    "delta_from_json",
    "delta_to_json",
    "deltas_from_jsonl",
    "deltas_to_jsonl",
]
