"""Deltas: immutable fact-level change sets for evolving databases.

A :class:`Delta` is the unit of change of the streaming subsystem: a set of
facts to remove and a set of facts to add, applied as ``(F - removes) |
adds``.  Deltas are values — normalized, hashable, and composable — so a
delta log is replayable and two logs describing the same net change compare
equal.

The JSON codec reuses the fact encoding of :mod:`repro.data.io` (the same
``{"relation", "arguments"}`` objects the serving request stream uses), so
a delta line in a JSONL stream is ``{"add": [...], "remove": [...]}`` and
element round-tripping matches the rest of the library.
"""

from __future__ import annotations

import json
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.data.database import Database, Fact
from repro.data.io import facts_from_json, facts_to_json
from repro.exceptions import ParseError, StreamError

__all__ = [
    "Delta",
    "delta_to_json",
    "delta_from_json",
    "deltas_to_jsonl",
    "deltas_from_jsonl",
]

_DELTA_KEYS = frozenset(("add", "remove"))


class Delta:
    """An immutable change set: facts to remove, then facts to add.

    Parameters
    ----------
    adds:
        Facts present after the delta.  Deduplicated and stored in a
        deterministic order.
    removes:
        Facts absent after the delta.  A fact may not appear on both
        sides — the application order would silently decide its fate.

    Application is set-semantic: adding a fact that is already present or
    removing one that is absent is a no-op, so replaying a delta log is
    idempotent per delta (see :class:`~repro.stream.evolving.EvolvingDatabase`
    for the schema-validated application).
    """

    __slots__ = ("_adds", "_removes", "_hash")

    def __init__(
        self,
        adds: Iterable[Fact] = (),
        removes: Iterable[Fact] = (),
    ) -> None:
        add_set = frozenset(adds)
        remove_set = frozenset(removes)
        for fact in add_set | remove_set:
            if not isinstance(fact, Fact):
                raise StreamError(
                    f"delta entries must be Fact instances, got {fact!r}"
                )
        ambiguous = add_set & remove_set
        if ambiguous:
            listing = ", ".join(str(fact) for fact in sorted(ambiguous, key=repr))
            raise StreamError(
                f"delta both adds and removes {listing}; split it into two "
                "deltas if the order matters"
            )
        self._adds = tuple(sorted(add_set, key=repr))
        self._removes = tuple(sorted(remove_set, key=repr))
        self._hash: Optional[int] = None

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------

    @classmethod
    def insert(cls, relation: str, *arguments: Any) -> "Delta":
        """A single-fact insertion delta."""
        return cls(adds=(Fact(relation, tuple(arguments)),))

    @classmethod
    def delete(cls, relation: str, *arguments: Any) -> "Delta":
        """A single-fact deletion delta."""
        return cls(removes=(Fact(relation, tuple(arguments)),))

    @classmethod
    def between(cls, before: Database, after: Database) -> "Delta":
        """The delta turning ``before`` into ``after``."""
        return cls(
            adds=after.facts - before.facts,
            removes=before.facts - after.facts,
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def adds(self) -> Tuple[Fact, ...]:
        return self._adds

    @property
    def removes(self) -> Tuple[Fact, ...]:
        return self._removes

    @property
    def touched_relations(self) -> FrozenSet[str]:
        """Relation names mentioned by any added or removed fact.

        The invalidation currency of the whole subsystem: cached engine
        results survive a delta iff the relations their query mentions are
        disjoint from this set.
        """
        return frozenset(
            fact.relation for fact in self._adds + self._removes
        )

    @property
    def is_empty(self) -> bool:
        return not self._adds and not self._removes

    def __len__(self) -> int:
        """Number of fact-level changes (the |delta| of the O(|delta|) bound)."""
        return len(self._adds) + len(self._removes)

    def __iter__(self) -> Iterator[Tuple[str, Fact]]:
        """Yield ``("remove", fact)`` then ``("add", fact)`` entries."""
        for fact in self._removes:
            yield ("remove", fact)
        for fact in self._adds:
            yield ("add", fact)

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------

    def apply_to(self, facts: FrozenSet[Fact]) -> FrozenSet[Fact]:
        """``(facts - removes) | adds`` — the defining set semantics."""
        return (facts - frozenset(self._removes)) | frozenset(self._adds)

    def then(self, other: "Delta") -> "Delta":
        """The composition ``self`` followed by ``other``, as one delta.

        ``d1.then(d2).apply_to(F) == d2.apply_to(d1.apply_to(F))`` for every
        fact set ``F``: later operations win, so a fact added by ``self``
        and removed by ``other`` is a net removal and vice versa.
        """
        adds = (frozenset(self._adds) - frozenset(other._removes)) | frozenset(
            other._adds
        )
        removes = (
            frozenset(self._removes) | frozenset(other._removes)
        ) - frozenset(other._adds)
        return Delta(adds=adds, removes=removes)

    def inverse(self) -> "Delta":
        """The delta undoing this one on any state it was applied to.

        Exact only when the delta was *effective* (added facts were absent,
        removed facts present) — the usual case for a validated log.
        """
        return Delta(adds=self._removes, removes=self._adds)

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Delta):
            return NotImplemented
        return self._adds == other._adds and self._removes == other._removes

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._adds, self._removes))
        return self._hash

    def __repr__(self) -> str:
        return (
            f"Delta(adds={len(self._adds)}, removes={len(self._removes)}, "
            f"touches={sorted(self.touched_relations)})"
        )

    # ------------------------------------------------------------------
    # JSON codec (the JSONL op-stream building block)
    # ------------------------------------------------------------------

    def to_json_dict(self) -> Dict[str, Any]:
        """The delta as a JSON-able ``{"add": [...], "remove": [...]}``."""
        return {
            "add": facts_to_json(self._adds),
            "remove": facts_to_json(self._removes),
        }

    @classmethod
    def from_json_dict(cls, payload: Any) -> "Delta":
        """Parse and strictly validate a ``{"add", "remove"}`` object.

        Unknown keys are rejected rather than ignored: a typo like
        ``"removes"`` would otherwise silently drop half the delta.
        """
        if not isinstance(payload, dict):
            raise ParseError(f"delta must be a JSON object, got {payload!r}")
        unknown = sorted(set(payload) - _DELTA_KEYS)
        if unknown:
            raise ParseError(
                f"delta has unknown keys {', '.join(unknown)}; "
                f"expected only {sorted(_DELTA_KEYS)}"
            )
        adds = facts_from_json(payload.get("add", []))
        removes = facts_from_json(payload.get("remove", []))
        try:
            return cls(adds=adds, removes=removes)
        except StreamError as error:
            raise ParseError(f"malformed delta: {error}") from error


def delta_to_json(delta: Delta) -> str:
    """One canonical JSON line for a delta (no trailing newline)."""
    return json.dumps(delta.to_json_dict(), sort_keys=True)


def delta_from_json(text: str) -> Delta:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ParseError(f"invalid delta JSON: {exc}") from exc
    return Delta.from_json_dict(payload)


def deltas_to_jsonl(deltas: Iterable[Delta]) -> str:
    """A delta log as a JSONL document (one delta per line)."""
    lines = [delta_to_json(delta) for delta in deltas]
    return "\n".join(lines) + ("\n" if lines else "")


def deltas_from_jsonl(text: str) -> List[Delta]:
    """Parse a JSONL delta log; blank lines and ``#`` comments are skipped."""
    deltas: List[Delta] = []
    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            deltas.append(delta_from_json(line))
        except ParseError as error:
            raise ParseError(f"delta line {lineno}: {error}") from error
    return deltas
