"""Evolving databases: an immutable snapshot plus a replayable delta log.

:class:`EvolvingDatabase` is the streaming subsystem's state holder.  It
keeps the current fact set as one mutable set per relation, so applying a
:class:`~repro.stream.delta.Delta` costs O(|delta|) set operations —
untouched relations are never copied, iterated, or re-indexed (structural
sharing).  Per-relation *generation counters* record how many deltas have
touched each relation; they are the cheap staleness test consumers use to
decide whether derived state (cached query answers, feature columns) can
survive a delta.

:meth:`materialize` produces the plain immutable
:class:`~repro.data.database.Database` for the current version — by
construction equal to rebuilding from scratch by replaying the log over the
base snapshot (the differential property suite asserts exactly that).  The
materialized database is cached per version, so repeated reads between
deltas are free and engine caches keyed on it stay coherent.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.data.database import Database, Fact
from repro.data.schema import ENTITY_SYMBOL, EntitySchema, Schema
from repro.exceptions import SchemaError, StreamError
from repro.stream.delta import Delta

__all__ = ["EvolvingDatabase"]

Element = Any


class EvolvingDatabase:
    """A database that evolves fact-by-fact under a validated delta log.

    Parameters
    ----------
    base:
        The initial immutable snapshot (version 0).
    schema:
        Optional explicit schema.  Defaults to the base's schema — note a
        schema *inferred* from facts only declares relations that have at
        least one fact, so streams that introduce brand-new relations
        should pass a schema declaring them up front.  The schema is fixed
        for the lifetime of the evolving database.
    """

    __slots__ = (
        "_schema",
        "_relations",
        "_generations",
        "_log",
        "_version",
        "_materialized",
        "_fact_count",
    )

    def __init__(self, base: Database, schema: Optional[Schema] = None) -> None:
        if schema is None:
            schema = base.schema
        else:
            base = base.with_schema(schema)  # revalidate under the override
        self._schema = schema
        self._relations: Dict[str, Set[Fact]] = {
            name: set(base.facts_of(name)) for name in base.relation_names
        }
        self._generations: Dict[str, int] = {
            name: 0 for name in schema.names
        }
        self._log: List[Delta] = []
        self._version = 0
        self._materialized: Optional[Database] = base
        self._fact_count = len(base)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def version(self) -> int:
        """Number of deltas applied so far (0 for the pristine base)."""
        return self._version

    @property
    def delta_log(self) -> Tuple[Delta, ...]:
        """The applied deltas, oldest first."""
        return tuple(self._log)

    def generation(self, relation: str) -> int:
        """How many applied deltas touched ``relation`` (0 if none ever)."""
        return self._generations.get(relation, 0)

    @property
    def generations(self) -> Mapping[str, int]:
        """A snapshot of all per-relation generation counters."""
        return dict(self._generations)

    def facts_of(self, relation: str) -> FrozenSet[Fact]:
        """The current facts over ``relation`` (possibly empty)."""
        return frozenset(self._relations.get(relation, ()))

    @property
    def relation_names(self) -> Tuple[str, ...]:
        """Names of relations with at least one current fact, sorted."""
        return tuple(
            sorted(name for name, facts in self._relations.items() if facts)
        )

    def __len__(self) -> int:
        return self._fact_count

    def __iter__(self) -> Iterator[Fact]:
        for name in self.relation_names:
            yield from sorted(self._relations[name], key=repr)

    def __contains__(self, fact: object) -> bool:
        if not isinstance(fact, Fact):
            return False
        return fact in self._relations.get(fact.relation, ())

    @property
    def entity_symbol(self) -> str:
        if isinstance(self._schema, EntitySchema):
            return self._schema.entity_symbol
        return ENTITY_SYMBOL

    def entities(self) -> FrozenSet[Element]:
        """``η(D)`` of the current version."""
        return frozenset(
            fact.arguments[0] for fact in self._relations.get(
                self.entity_symbol, ()
            )
        )

    def __repr__(self) -> str:
        return (
            f"EvolvingDatabase(version={self._version}, "
            f"facts={self._fact_count}, "
            f"relations={len(self.relation_names)})"
        )

    # ------------------------------------------------------------------
    # Evolution
    # ------------------------------------------------------------------

    def _validate(self, delta: Delta) -> None:
        """Eager schema validation: every fact must fit the fixed schema."""
        for fact in delta.adds + delta.removes:
            try:
                arity = self._schema.arity_of(fact.relation)
            except SchemaError:
                raise StreamError(
                    f"delta mentions relation {fact.relation!r} absent from "
                    "the evolving database's schema; construct the "
                    "EvolvingDatabase with a schema declaring it"
                ) from None
            if fact.arity != arity:
                raise StreamError(
                    f"delta fact {fact} does not match arity {arity} of "
                    f"relation {fact.relation!r}"
                )

    def apply(self, delta: Delta) -> Delta:
        """Apply one delta in O(|delta|); returns the *effective* delta.

        Application is set-semantic (``(F - removes) | adds``): adding a
        present fact or removing an absent one is a no-op.  The returned
        delta contains exactly the changes that took effect — callers that
        invalidate downstream state can use its (possibly smaller)
        ``touched_relations`` instead of the request's.

        Validation happens *before* any mutation, so a rejected delta
        leaves the database untouched.  Generation counters advance for
        every relation the effective delta touches; an entirely
        ineffective delta still appends to the log (the stream happened)
        but bumps nothing.
        """
        self._validate(delta)
        effective_removes: List[Fact] = []
        effective_adds: List[Fact] = []
        for fact in delta.removes:
            facts = self._relations.get(fact.relation)
            if facts is not None and fact in facts:
                facts.discard(fact)
                effective_removes.append(fact)
                if not facts:
                    del self._relations[fact.relation]
        for fact in delta.adds:
            facts = self._relations.setdefault(fact.relation, set())
            if fact not in facts:
                facts.add(fact)
                effective_adds.append(fact)
        effective = Delta(adds=effective_adds, removes=effective_removes)
        for relation in effective.touched_relations:
            self._generations[relation] = (
                self._generations.get(relation, 0) + 1
            )
        self._fact_count += len(effective_adds) - len(effective_removes)
        self._log.append(delta)
        self._version += 1
        if not effective.is_empty:
            self._materialized = None
        return effective

    def apply_all(self, deltas: Iterable[Delta]) -> Delta:
        """Apply a sequence of deltas; returns the composed effective delta."""
        net = Delta()
        for delta in deltas:
            net = net.then(self.apply(delta))
        return net

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------

    def materialize(self) -> Database:
        """The current version as an immutable :class:`Database`.

        Equal (by :class:`Database` value equality) to replaying the delta
        log over the base snapshot from scratch; cached per version, so the
        returned object is stable between deltas — engine caches keyed on
        it (and migrated across deltas by
        :meth:`~repro.cq.engine.EvaluationEngine.apply_delta`) stay valid.
        """
        if self._materialized is None:
            self._materialized = Database(
                (
                    fact
                    for facts in self._relations.values()
                    for fact in facts
                ),
                schema=self._schema,
            )
        return self._materialized
