"""Incremental classification over an evolving database.

:class:`StreamingClassifier` is the train-once / serve-*forever* device:
one fitted separating pair, one :class:`~repro.stream.evolving.EvolvingDatabase`,
and one private :class:`~repro.cq.engine.EvaluationEngine` whose caches are
*migrated* — not cleared — across deltas.  After
:meth:`apply`, only the statistic's feature queries that mention a touched
relation are re-evaluated on the next :meth:`classify`; the rest of the
feature matrix is read back out of the migrated answer cache.

Correctness is by construction rather than by a parallel incremental code
path: :meth:`classify` calls the *same*
:meth:`~repro.core.statistic.SeparatingPair.classify` training and serving
use, against the materialized current version; incrementality comes
entirely from :meth:`EvaluationEngine.apply_delta
<repro.cq.engine.EvaluationEngine.apply_delta>` keeping the sound cache
entries alive.  The result is therefore bit-identical to a cold
recomputation on the materialized database — the differential suite and
the A9 benchmark assert exactly that, and the benchmark shows the work
(hom checks, evaluations) is strictly smaller.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Union

from repro.cq.engine import EvaluationEngine
from repro.data.database import Database
from repro.data.labeling import Labeling
from repro.data.schema import Schema
from repro.core.statistic import SeparatingPair
from repro.exceptions import StreamError
from repro.stream.delta import Delta
from repro.stream.evolving import EvolvingDatabase

__all__ = ["StreamingClassifier"]


class StreamingClassifier:
    """Classify a database that keeps changing, re-evaluating only what moved.

    Parameters
    ----------
    model:
        A :class:`~repro.core.statistic.SeparatingPair`, or anything with a
        ``pair()`` method returning one (a
        :class:`~repro.serve.artifact.ModelArtifact`).
    base:
        The initial database — a plain :class:`Database` (wrapped in a
        fresh :class:`EvolvingDatabase`) or an existing evolving database
        whose future deltas should flow through this classifier.
    engine:
        An explicit engine; defaults to a fresh private one, so cache
        retention statistics are attributable to this stream.  The engine
        is *stateful across deltas* — sharing it with unrelated evolving
        targets of equal value is unsupported.
    schema:
        Optional schema override forwarded to the wrapped evolving
        database (ignored when ``base`` already is one).
    """

    def __init__(
        self,
        model: Union[SeparatingPair, Any],
        base: Union[Database, EvolvingDatabase],
        engine: Optional[EvaluationEngine] = None,
        schema: Optional[Schema] = None,
    ) -> None:
        if isinstance(model, SeparatingPair):
            self._pair = model
        elif hasattr(model, "pair"):
            self._pair = model.pair()
        else:
            raise StreamError(
                "model must be a SeparatingPair or provide a pair() method, "
                f"got {type(model).__name__}"
            )
        if isinstance(base, EvolvingDatabase):
            if schema is not None:
                raise StreamError(
                    "schema override is only valid when base is a plain "
                    "Database; the EvolvingDatabase's schema is fixed"
                )
            self._evolving = base
        else:
            self._evolving = EvolvingDatabase(base, schema=schema)
        self._engine = engine if engine is not None else EvaluationEngine()
        self._current = self._evolving.materialize()
        self.deltas_applied = 0
        self.features_reused = 0
        self.features_reevaluated = 0
        self._last_reconcile: Dict[str, int] = {"retained": 0, "invalidated": 0}

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def pair(self) -> SeparatingPair:
        return self._pair

    @property
    def evolving(self) -> EvolvingDatabase:
        return self._evolving

    @property
    def database(self) -> Database:
        """The materialized current version."""
        return self._current

    @property
    def engine(self) -> EvaluationEngine:
        return self._engine

    @property
    def last_reconcile(self) -> Dict[str, int]:
        """Cache entries retained/invalidated by the most recent delta."""
        return dict(self._last_reconcile)

    # ------------------------------------------------------------------
    # Evolution
    # ------------------------------------------------------------------

    def apply(self, delta: Delta) -> Delta:
        """Apply a delta and reconcile the engine caches; O(|delta| + cache).

        Returns the effective delta (see
        :meth:`EvolvingDatabase.apply
        <repro.stream.evolving.EvolvingDatabase.apply>`); invalidation is
        scoped to the *effective* touched relations, so a request that
        re-adds existing facts invalidates nothing.
        """
        before = self._current
        effective = self._evolving.apply(delta)
        after = self._evolving.materialize()
        self._last_reconcile = self._engine.apply_delta(
            before, after, effective.touched_relations
        )
        self._current = after
        self.deltas_applied += 1
        touched = effective.touched_relations
        for query in self._pair.statistic:
            if touched.isdisjoint(query.mentioned_relations()):
                self.features_reused += 1
            else:
                self.features_reevaluated += 1
        return effective

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------

    def classify(self) -> Labeling:
        """Label every entity of the current version.

        The same code path as batch classification — only the engine's
        surviving caches make it incremental — so the labeling is
        bit-identical to ``pair.classify(materialize())`` on a cold engine.
        """
        return self._pair.classify(self._current, engine=self._engine)

    def predict(self, entity: Any) -> int:
        """The ±1 label of one entity of the current version."""
        return self._pair.predict(self._current, entity, engine=self._engine)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Stream accounting: deltas, feature reuse, engine work and caches."""
        info = self._engine.cache_info()
        return {
            "version": self._evolving.version,
            "deltas_applied": self.deltas_applied,
            "features_reused": self.features_reused,
            "features_reevaluated": self.features_reevaluated,
            "cache_retained": info.retained,
            "cache_invalidated": info.invalidated,
            "engine": self._engine.work_snapshot(),
        }

    def __repr__(self) -> str:
        return (
            f"StreamingClassifier(dimension={self._pair.statistic.dimension}, "
            f"version={self._evolving.version}, "
            f"facts={len(self._evolving)})"
        )
