"""CI smoke for warm process starts from a `repro.store` root.

Simulates the restart story end to end with real subprocesses:

1. ``repro train --store --publish`` builds a model, publishes it into
   the store, and warms the plan cache; the process then *exits* (the
   "kill" — nothing survives but the store directory).
2. ``repro predict --store`` runs twice in fresh processes.  The second
   run must prove it started hot: byte-identical predictions, nonzero
   store memo hits, and **zero** plan compilations in its metrics.
3. ``repro serve --store`` boots the gateway purely from the store (no
   artifact files on the command line), serves one prediction over HTTP
   that matches a direct in-process InferenceService, reports nonzero
   store hits in /metrics, and drains cleanly on SIGTERM.

Backend is selected with GATEWAY_BACKEND (default "python") so the same
script covers both legs of the matrix.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import urllib.request

from repro.data.io import facts_to_json, training_database_to_json
from repro.gateway.server import labels_json
from repro.serve import InferenceService, ModelArtifact
from repro.workloads.retail import retail_database

BACKEND = os.environ.get("GATEWAY_BACKEND", "python")
STORE = "warm-store"
TRAIN_PATH = "warm-train.json"
MODEL_PATH = "warm-model.json"
REQUESTS_PATH = "warm-requests.jsonl"


def run(arguments, **kwargs):
    print("+", " ".join(arguments))
    return subprocess.run(
        [sys.executable, "-m", "repro", *arguments],
        check=True, text=True, capture_output=True, **kwargs,
    )


def get_json(url: str, body: bytes = None) -> dict:
    request = urllib.request.Request(
        url, data=body, method="POST" if body is not None else "GET"
    )
    with urllib.request.urlopen(request, timeout=30) as reply:
        return json.load(reply)


def main() -> None:
    # All scratch (store root, train/model/request files) lives in a
    # temp dir so running the smoke never litters the repo checkout.
    # A relative PYTHONPATH (CI uses "src") must survive the chdir for
    # the child processes, so absolutize it first.
    if os.environ.get("PYTHONPATH"):
        os.environ["PYTHONPATH"] = os.pathsep.join(
            os.path.abspath(entry)
            for entry in os.environ["PYTHONPATH"].split(os.pathsep)
        )
    scratch = tempfile.mkdtemp(prefix="warmstart-smoke-")
    os.chdir(scratch)

    training = retail_database(n_customers=8, seed=3)
    with open(TRAIN_PATH, "w") as handle:
        handle.write(training_database_to_json(training))
    request_db = retail_database(n_customers=4, seed=11).database
    with open(REQUESTS_PATH, "w") as handle:
        handle.write(
            json.dumps({"id": "r0", "facts": facts_to_json(request_db)})
            + "\n"
        )

    # 1. Train, publish, warm the store — then the process dies.
    train = run([
        "train", TRAIN_PATH, "--language", "cqm", "--m", "3",
        "--backend", BACKEND, "--store", STORE, "--publish", "retail",
        "--out", MODEL_PATH,
    ])
    assert "published retail@1" in train.stdout, train.stdout

    # 2. Two fresh predict processes against the same store.
    first = run([
        "predict", REQUESTS_PATH, "--model", MODEL_PATH,
        "--backend", BACKEND, "--store", STORE, "--metrics",
    ])
    second = run([
        "predict", REQUESTS_PATH, "--model", MODEL_PATH,
        "--backend", BACKEND, "--store", STORE, "--metrics",
    ])
    assert first.stdout == second.stdout, "warm run changed predictions"
    metrics = json.loads(second.stderr)
    store_stats = metrics["engine"]["store"]
    assert store_stats["memo_hits"] > 0, store_stats
    assert metrics["engine"]["plan_compilations"] == 0, metrics["engine"]
    print(
        f"warm predict OK: memo_hits={store_stats['memo_hits']} "
        f"plan_compilations=0"
    )

    # 3. A store-backed gateway restart: models come from the store root.
    artifact = ModelArtifact.load(MODEL_PATH)
    with InferenceService(artifact, backend=BACKEND) as direct:
        expected = labels_json(direct.predict(request_db))

    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--store", STORE, "--port", "0", "--backend", BACKEND,
        ],
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        banner = server.stderr.readline().strip()
        print(banner)
        assert banner.startswith("repro gateway listening on "), banner
        port = int(banner.split()[4].rsplit(":", 1)[1])
        base = f"http://127.0.0.1:{port}"

        assert get_json(f"{base}/healthz") == {"status": "ok"}

        body = json.dumps({"facts": facts_to_json(request_db)}).encode()
        reply = get_json(f"{base}/v1/predict?model=retail", body)
        assert reply["model"] == "retail", reply
        assert reply["labels"] == expected, (reply, expected)

        gateway_metrics = get_json(f"{base}/metrics")
        registry_store = gateway_metrics["gateway"]["registry"]["store"]
        assert registry_store["hits"] > 0, registry_store

        server.send_signal(signal.SIGTERM)
        _, stderr = server.communicate(timeout=60)
        print(stderr, end="")
        assert server.returncode == 0, server.returncode
    finally:
        if server.poll() is None:
            server.kill()
            server.communicate()
    print(
        f"warmstart smoke OK: backend={BACKEND} "
        f"store_hits={registry_store['hits']}"
    )


if __name__ == "__main__":
    main()
