"""CI smoke: the broadcast runtime leaves no shared-memory segments behind.

Every segment the zero-copy runtime creates is named ``repro-shm-*``
(:data:`repro.data.shm.SEGMENT_PREFIX`), owned by the parent executor, and
unlinked in :meth:`~repro.runtime.executor.ParallelExecutor.close`.  This
script drives broadcast-heavy dispatch under every available start method
— indicator matrices on both backends plus the served-model path — and
then asserts ``/dev/shm`` holds not one stray segment.  A leak here means
a worker unlinked a borrowed segment's tracker entry, or an owner path
skipped ``release()``.
"""

from __future__ import annotations

import glob
import multiprocessing
import sys

sys.path.insert(0, "src")

from repro.core.languages import BoundedAtomsCQ
from repro.core.pipeline import FeatureEngineeringSession
from repro.core.separability import feature_pool
from repro.cq.engine import EvaluationEngine
from repro.data import shm
from repro.data.bitset import HAVE_NUMPY
from repro.runtime import ParallelExecutor
from repro.serve import InferenceService
from repro.workloads.retail import retail_database

SHM_GLOB = f"/dev/shm/{shm.SEGMENT_PREFIX}*"


def _segments() -> set:
    return set(glob.glob(SHM_GLOB))


def _drive_executor(method: str, backend: str) -> None:
    training = retail_database(n_customers=6, seed=3)
    queries = feature_pool(training, 2)
    database = training.database
    entities = sorted(database.entities(), key=repr)
    serial = EvaluationEngine(backend=backend).indicator_matrix(
        queries, database, entities
    )
    with ParallelExecutor(
        2, backend=backend, start_method=method
    ) as executor:
        parallel = EvaluationEngine(backend=backend).indicator_matrix(
            queries, database, entities, executor=executor
        )
        assert parallel == serial, (method, backend)
        assert executor.fallback_reason is None, executor.fallback_reason
        if shm.HAVE_SHM:
            # The segments must be live while the executor is: the leak
            # check below only means something if segments were created.
            assert executor.broadcast_info()["segment_bytes"] > 0
            assert _segments(), "expected live repro-shm segments"


def _drive_serving(method: str) -> None:
    training = retail_database(n_customers=6, seed=3)
    with FeatureEngineeringSession(training, BoundedAtomsCQ(3)) as session:
        assert session.separable
        artifact = session.export_artifact()
    requests = [
        retail_database(n_customers=4, seed=seed).database
        for seed in (11, 12)
    ]
    with InferenceService(artifact, workers=1) as reference:
        expected = reference.predict_batch(requests)
    with InferenceService(artifact, workers=2, start_method=method) as service:
        assert service.predict_batch(requests) == expected, method


def main() -> int:
    if not shm.HAVE_SHM:
        print("shared memory unavailable on this platform; nothing to leak")
        return 0
    before = _segments()
    if before:
        print(f"pre-existing segments (ignored): {sorted(before)}")

    methods = [
        method
        for method in ("fork", "spawn")
        if method in multiprocessing.get_all_start_methods()
    ]
    backends = ["python"] + (["numpy"] if HAVE_NUMPY else [])
    for method in methods:
        for backend in backends:
            _drive_executor(method, backend)
            print(f"executor leg OK: method={method} backend={backend}")
        _drive_serving(method)
        print(f"serving leg OK: method={method}")

    leaked = _segments() - before
    if leaked:
        print(f"LEAKED shared-memory segments: {sorted(leaked)}", file=sys.stderr)
        return 1
    print(f"shm leak check OK ({len(methods)} start methods, "
          f"{len(backends)} backends, 0 stray segments)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
