"""CI smoke for the network serving tier (`repro serve`).

Boots the gateway as a real subprocess on an ephemeral port, then over
plain HTTP: probes /healthz, scores one database via /v1/predict and
checks the labels against a direct in-process InferenceService.predict,
reads /metrics, and finally SIGTERMs the server expecting a graceful
drain and exit code 0.

Backend is selected with GATEWAY_BACKEND (default "python") so the same
script covers the pure-python and numpy legs of the matrix.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import urllib.request

from repro.core.languages import BoundedAtomsCQ
from repro.core.pipeline import FeatureEngineeringSession
from repro.data.io import facts_to_json
from repro.gateway.server import labels_json
from repro.serve import InferenceService, ModelArtifact
from repro.workloads.retail import retail_database

BACKEND = os.environ.get("GATEWAY_BACKEND", "python")
MODEL_PATH = "model.json"


def ensure_model() -> ModelArtifact:
    if os.path.exists(MODEL_PATH):
        return ModelArtifact.load(MODEL_PATH)
    training = retail_database(n_customers=8, seed=3)
    with FeatureEngineeringSession(training, BoundedAtomsCQ(3)) as session:
        assert session.separable
        artifact = session.export_artifact()
    artifact.save(MODEL_PATH)
    return artifact


def get_json(url: str, body: bytes = None) -> dict:
    request = urllib.request.Request(
        url, data=body, method="POST" if body is not None else "GET"
    )
    with urllib.request.urlopen(request, timeout=30) as reply:
        return json.load(reply)


def main() -> None:
    artifact = ensure_model()
    database = retail_database(n_customers=4, seed=11).database
    with InferenceService(artifact, backend=BACKEND) as direct:
        expected = labels_json(direct.predict(database))

    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            f"retail={MODEL_PATH}", "--port", "0", "--backend", BACKEND,
        ],
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        banner = server.stderr.readline().strip()
        print(banner)
        assert banner.startswith("repro gateway listening on "), banner
        port = int(banner.split()[4].rsplit(":", 1)[1])
        base = f"http://127.0.0.1:{port}"

        health = get_json(f"{base}/healthz")
        assert health == {"status": "ok"}, health

        body = json.dumps({"facts": facts_to_json(database)}).encode()
        reply = get_json(f"{base}/v1/predict?model=retail", body)
        assert reply["model"] == "retail", reply
        assert reply["labels"] == expected, (reply, expected)

        metrics = get_json(f"{base}/metrics")
        assert metrics["models"]["retail@1"]["requests"] == 1, metrics
        assert metrics["gateway"]["admission"]["in_flight"] == 0, metrics

        server.send_signal(signal.SIGTERM)
        _, stderr = server.communicate(timeout=60)
        print(stderr, end="")
        assert server.returncode == 0, server.returncode
    finally:
        if server.poll() is None:
            server.kill()
            server.communicate()
    print(f"gateway smoke OK: backend={BACKEND} labels={expected}")


if __name__ == "__main__":
    main()
