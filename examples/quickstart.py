#!/usr/bin/env python
"""Quickstart: separability, feature generation, and classification.

Builds a tiny training database of citation-graph entities, checks which
regularized query classes can separate it, materializes a separating
statistic, and classifies a fresh evaluation database — the full pipeline of
"Regularizing Conjunctive Features for Classification" (PODS 2019) in one
script.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.data import Database, TrainingDatabase
from repro.core import (
    cqm_separability,
    generate_ghw_statistic,
    ghw_classify,
    ghw_separable,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A training database: entities are nodes of a small graph.
    #    Positives are the nodes that can reach depth 2 by following edges.
    # ------------------------------------------------------------------
    database = Database.from_tuples(
        {
            "E": [
                ("alice", "bob"),
                ("bob", "carol"),
                ("dave", "erin"),
            ],
            "eta": [("alice",), ("bob",), ("dave",)],
        }
    )
    training = TrainingDatabase.from_examples(
        database, positive=["alice"], negative=["bob", "dave"]
    )
    print("Training database:", training)

    # ------------------------------------------------------------------
    # 2. Separability under regularization (Sections 4 and 5).
    # ------------------------------------------------------------------
    for m in (1, 2):
        result = cqm_separability(training, m)
        print(f"CQ[{m}]-separable: {result.separable} "
              f"(feature pool of {result.statistic.dimension} queries)")

    print("GHW(1)-separable:", ghw_separable(training, 1))

    # ------------------------------------------------------------------
    # 3. Feature generation: materialize a separating pair (Prop 4.1).
    # ------------------------------------------------------------------
    result = cqm_separability(training, 2)
    pair = result.separating_pair
    assert pair is not None and pair.separates(training)
    weights = pair.classifier.weights
    used = [
        (query, weight)
        for query, weight in zip(pair.statistic, weights)
        if weight != 0
    ]
    print(f"\nSeparating classifier uses {len(used)} of "
          f"{pair.statistic.dimension} features; a few of them:")
    for query, weight in used[:5]:
        print(f"  weight {weight:+g}  {query}")

    # ------------------------------------------------------------------
    # 4. GHW(1) feature generation via unravelings (Prop 5.6).
    # ------------------------------------------------------------------
    ghw_pair = generate_ghw_statistic(training, 1)
    print(f"\nGHW(1) statistic: {ghw_pair.statistic.dimension} features, "
          f"sizes {[len(q.atoms) for q in ghw_pair.statistic]} atoms")

    # ------------------------------------------------------------------
    # 5. Classify a fresh evaluation database (Theorem 5.8) — without
    #    needing the materialized statistic at all.
    # ------------------------------------------------------------------
    evaluation = Database.from_tuples(
        {
            "E": [("pam", "quinn"), ("quinn", "rita"), ("sam", "tess")],
            "eta": [("pam",), ("quinn",), ("sam",)],
        }
    )
    labeling = ghw_classify(training, evaluation, 1)
    print("\nClassification of the evaluation database:")
    for entity in sorted(labeling):
        sign = "+" if labeling[entity] == 1 else "-"
        print(f"  {sign} {entity}")


if __name__ == "__main__":
    main()
