#!/usr/bin/env python
"""Regularization and generalization: the paper's Section 1 story, measured.

Overly expressive feature classes overfit; overly weak ones underfit.  This
script trains classifiers under three regularization levels (CQ[1], CQ[2],
GHW(1)) on 70% of the entities of two planted-concept workloads and reports
held-out accuracy — the empirical side of why the paper bounds atoms, width
and dimension.

Run:  python examples/holdout_generalization.py
"""

from __future__ import annotations

from repro.core import holdout_evaluation
from repro.core.languages import BoundedAtomsCQ, GhwClass
from repro.workloads import bibliography_database, molecule_database


def main() -> None:
    workloads = [
        ("bibliography (award-winning author)",
         bibliography_database(n_papers=12, seed=7)),
        ("molecules (carbonyl group)",
         molecule_database(n_molecules=8, seed=4)),
    ]
    languages = [BoundedAtomsCQ(1), BoundedAtomsCQ(2), GhwClass(1)]

    for name, training in workloads:
        print(f"\n{name}: {len(training.entities)} entities, "
              f"{len(training.positives)} positive")
        print(f"  {'class':10s} {'train sep':>9s} {'held-out':>10s} "
              f"{'accuracy':>9s}")
        for language in languages:
            outcome = holdout_evaluation(
                training,
                language,
                test_fraction=0.3,
                seed=2,
                epsilon=0.34,  # tolerate a noisy training fold
            )
            print(f"  {outcome.language:10s} "
                  f"{str(outcome.train_separable):>9s} "
                  f"{outcome.correct:>4d}/{outcome.test_entities:<4d} "
                  f"{outcome.accuracy:>8.2f}")


if __name__ == "__main__":
    main()
