#!/usr/bin/env python
"""Classification without materializing the statistic (Theorem 5.8).

The paper's most striking result: for GHW(k) features, deciding separability
is polynomial (Theorem 5.3), materializing a separating statistic may
require exponentially large queries (Theorem 5.7) — and yet new entities can
be classified in polynomial time without ever writing those queries down
(Algorithm 1).

This script makes the gap visible on the prime-cycle family: the implicit
classifier answers instantly while the smallest materializable path feature
grows at lcm scale.

Run:  python examples/classify_without_features.py
"""

from __future__ import annotations

import time

from repro.core import GhwClassifier, ghw_separable
from repro.workloads import (
    minimal_path_feature_length,
    prime_cycle_family,
)


def main() -> None:
    for primes in ([2, 3], [2, 3, 5], [2, 3, 5, 7]):
        training = prime_cycle_family(
            primes, positive_indices=range(len(primes))
        )
        size = len(training.database)

        start = time.perf_counter()
        separable = ghw_separable(training, 1)
        sep_time = time.perf_counter() - start
        assert separable

        start = time.perf_counter()
        device = GhwClassifier(training, 1)
        labeling = device.classify(training.database)
        cls_time = time.perf_counter() - start
        consistent = all(
            labeling[e] == training.label(e) for e in training.entities
        )

        feature_length = minimal_path_feature_length(training)

        print(f"primes {primes}: |D| = {size}")
        print(f"  GHW(1)-SEP decided in {sep_time * 1e3:7.1f} ms")
        print(f"  Algorithm 1 classified in {cls_time * 1e3:7.1f} ms "
              f"(consistent: {consistent})")
        print(f"  ... but the smallest path feature selecting all "
              f"entities needs {feature_length} atoms "
              f"(lcm{tuple(primes)} - 1)")
        print()


if __name__ == "__main__":
    main()
