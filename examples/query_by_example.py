#!/usr/bin/env python
"""Query By Example and the bounded-dimension connection (Section 6).

Given a database and positive/negative example tuples, QBE asks for a query
whose answers include all positives and no negatives.  This script solves
QBE for three feature classes on a small org chart, then replays the
Lemma 6.5 reduction to show how QBE instances become bounded-dimension
separability instances.

Run:  python examples/query_by_example.py
"""

from __future__ import annotations

from repro.data import Database
from repro.core import (
    CQ_ALL,
    bounded_dimension_separable,
    cq_qbe,
    cq_qbe_explanation,
    cqm_qbe,
    ghw_qbe,
    qbe_to_bounded_dimension,
)


def main() -> None:
    # An org chart: manages(boss, report); senior people manage managers.
    database = Database.from_tuples(
        {
            "manages": [
                ("ann", "bo"),
                ("bo", "cy"),
                ("bo", "di"),
                ("eve", "fay"),
            ],
        }
    )
    positives = ["ann"]  # manages a manager
    negatives = ["bo", "cy", "di", "eve", "fay"]

    print("Database:", database)
    print(f"S+ = {positives},  S- = {negatives}\n")

    # ------------------------------------------------------------------
    # QBE for three classes of queries.
    # ------------------------------------------------------------------
    print("CQ-QBE:", cq_qbe(database, positives, negatives))
    explanation = cq_qbe_explanation(database, positives, negatives)
    print("  product explanation:", explanation)

    print("GHW(1)-QBE:", ghw_qbe(database, positives, negatives, 1))

    small = cqm_qbe(database, positives, negatives, 2)
    print("CQ[2]-QBE:", small)

    tiny = cqm_qbe(database, positives, negatives, 1)
    print("CQ[1]-QBE:", tiny, "(one atom cannot see two levels down)")

    # ------------------------------------------------------------------
    # Lemma 6.5: the same instance as bounded-dimension separability.
    # ------------------------------------------------------------------
    print("\nLemma 6.5 reduction to SEP[l]:")
    for ell in (1, 2):
        training = qbe_to_bounded_dimension(
            database, positives, negatives, ell
        )
        result = bounded_dimension_separable(training, ell, CQ_ALL)
        print(f"  l = {ell}: training database with "
              f"{len(training.entities)} entities -> "
              f"separable with {ell} features: {bool(result)}")


if __name__ == "__main__":
    main()
