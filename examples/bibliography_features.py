#!/usr/bin/env python
"""Relational feature engineering over a bibliographic database.

The paper's motivating scenario [1, 24, 27]: entities are papers in a
multi-relational database (authors, citations, awards) and the feature
engineer wants join queries that linearly separate an unknown target
concept.  Here the hidden concept is "has an award-winning author"; the
pipeline discovers a separating statistic from CQ[2] alone, inspects the
features the classifier actually uses, and measures generalization on a
fresh sample from the same generator.

Run:  python examples/bibliography_features.py
"""

from __future__ import annotations

from repro.core import cqm_separability
from repro.workloads import bibliography_database, bibliography_schema_concept


def main() -> None:
    training = bibliography_database(
        n_papers=12, n_authors=6, n_awards=2, seed=7
    )
    print("Hidden concept:", bibliography_schema_concept())
    print(f"Training: {len(training.entities)} papers, "
          f"{len(training.positives)} positive")

    # ------------------------------------------------------------------
    # Try increasingly expressive feature classes (regularization knob m).
    # ------------------------------------------------------------------
    for m in (1, 2):
        result = cqm_separability(training, m)
        print(f"\nCQ[{m}]: pool of {result.statistic.dimension} features "
              f"-> separable: {result.separable}")
        if not result.separable:
            continue
        pair = result.separating_pair
        used = [
            (weight, query)
            for query, weight in zip(
                pair.statistic, pair.classifier.weights
            )
            if weight != 0
        ]
        print(f"  classifier touches {len(used)} features, e.g.:")
        for weight, query in sorted(
            used, key=lambda pair: -abs(pair[0])
        )[:4]:
            print(f"    {weight:+g}  {query}")

    # ------------------------------------------------------------------
    # Generalization: classify papers from a fresh database drawn from the
    # same generator, and compare with the hidden concept's ground truth.
    # ------------------------------------------------------------------
    result = cqm_separability(training, 2)
    pair = result.separating_pair
    fresh = bibliography_database(
        n_papers=14, n_authors=6, n_awards=2, seed=8
    )
    predicted = pair.classify(fresh.database)
    correct = sum(
        1
        for paper in fresh.entities
        if predicted[paper] == fresh.label(paper)
    )
    print(f"\nGeneralization to a fresh database: "
          f"{correct}/{len(fresh.entities)} papers correct")


if __name__ == "__main__":
    main()
