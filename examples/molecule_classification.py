#!/usr/bin/env python
"""Molecular classification with noisy labels (approximate separability).

A propositionalization-style workload [29]: molecules are typed graphs, the
target is the presence of a carbonyl group, and a fraction of the training
labels is corrupted.  Exact CQ[m]-separability fails on the noisy data, but
the approximate variant (Section 7) absorbs the noise and still recovers a
classifier that predicts the clean concept.

Run:  python examples/molecule_classification.py
"""

from __future__ import annotations

from repro.core import cqm_approx_separability, cqm_separability
from repro.workloads import carbonyl_concept, molecule_database, with_noise


def main() -> None:
    clean = molecule_database(
        n_molecules=8, atoms_per_molecule=4, carbonyl_fraction=0.5, seed=4
    )
    print("Target concept:", carbonyl_concept())
    print(f"{len(clean.entities)} molecules, "
          f"{len(clean.positives)} contain the group")

    # ------------------------------------------------------------------
    # Corrupt one label and watch exact separability break.
    # ------------------------------------------------------------------
    noisy, flipped = with_noise(clean, fraction=1 / 8, seed=1)
    print(f"\nFlipped labels: {sorted(flipped)}")

    exact_clean = cqm_separability(clean, 2)
    exact_noisy = cqm_separability(noisy, 2)
    print(f"exact CQ[2]-separable: clean={exact_clean.separable}, "
          f"noisy={exact_noisy.separable}")

    # ------------------------------------------------------------------
    # Approximate separability with an ε = 1/8 error budget (Section 7).
    # ------------------------------------------------------------------
    epsilon = 1 / 8
    approx = cqm_approx_separability(noisy, 2, epsilon)
    print(f"\n(CQ[2], {epsilon})-ApxSep: separable={approx.separable}, "
          f"min errors={approx.min_errors} (budget {approx.budget})")
    print(f"entities sacrificed: {sorted(approx.misclassified)}")

    # ------------------------------------------------------------------
    # The repaired classifier predicts the CLEAN labels.
    # ------------------------------------------------------------------
    predicted = approx.pair.classify(clean.database)
    correct = sum(
        1
        for molecule in clean.entities
        if predicted[molecule] == clean.label(molecule)
    )
    print(f"\nagainst clean ground truth: {correct}/"
          f"{len(clean.entities)} molecules correct")


if __name__ == "__main__":
    main()
